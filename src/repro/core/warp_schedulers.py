"""Warp scheduling policies.

Each SM has ``config.issue_width`` independent scheduler instances (Fermi
style); warps are assigned to a scheduler at dispatch and never migrate.
Every cycle each scheduler picks at most one READY warp to issue.

Policies:

* :class:`LRRScheduler` — loose round robin, implemented as
  least-recently-issued-first.  The classic fair baseline.
* :class:`GTOScheduler` — greedy-then-oldest: keep issuing the same warp
  until it stalls, then fall back to the oldest ready warp (by CTA dispatch
  age, then warp index).  The paper's LCS *requires* a greedy scheduler: it
  is what makes per-CTA issue counts informative (younger CTAs only issue
  when every older CTA is stalled).
* :class:`BAWSScheduler` — the paper's block-aware warp scheduler for BCS:
  greedy-then-oldest where "oldest" orders by *block* dispatch age first, so
  the consecutive CTAs of a block stay temporally aligned and their shared
  (halo) data is still L1-resident when the sibling CTA touches it.

Implementation note: ready warps live in a lazy min-heap.  Entries carry the
warp's ``epoch`` at push time; a popped entry is valid only if the warp is
still READY with the same epoch.  All priority keys end in a unique
``(cta.seq, warp.idx)`` pair so heap tuples never compare Warp objects.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..sim.isa import Op
from ..sim.warp import Warp, WarpState


class WarpScheduler:
    """Base class: lazy ready-heap plus an optional greedy pointer."""

    #: subclasses with a greedy pointer set this
    greedy = False
    name = "base"

    __slots__ = ("_heap", "_greedy_warp")

    def __init__(self) -> None:
        self._heap: list[tuple[tuple, int, Warp]] = []
        self._greedy_warp: Warp | None = None

    # -- policy hook ----------------------------------------------------- #
    def priority_key(self, warp: Warp) -> tuple:
        raise NotImplementedError

    #: How many ready candidates the scheduler examines per cycle when the
    #: preferred ones cannot issue (structural hazard at the LD/ST queue).
    #: Real issue logic considers a bounded window of warps per cycle.
    SCAN_LIMIT = 6

    # -- SM-facing API ----------------------------------------------------#
    def on_ready(self, warp: Warp) -> None:
        """Called whenever ``warp`` (re)enters READY."""
        if warp is self._greedy_warp:
            # The greedy pointer guarantees this warp is picked while READY,
            # so a heap entry would only ever be skipped as stale.
            return
        heapq.heappush(self._heap, (self.priority_key(warp), warp.epoch, warp))

    def pick(self, can_issue=None) -> Warp | None:
        """Select the warp to issue this cycle (or None).

        ``can_issue(warp)`` reports structural availability (e.g. LD/ST
        queue space for a memory instruction); warps that are ready but
        cannot issue are skipped, like hardware scoreboard/structural
        checks at the issue stage — this is what lets younger warps run
        while an older warp waits for a memory-pipe slot, and conversely
        what starves younger warps' *memory* instructions when an older
        warp competes for the same slot.
        """
        heap = self._heap
        heappop = heapq.heappop
        ready = WarpState.READY   # enum members are singletons: `is` is ==
        if self.greedy:
            greedy_warp = self._greedy_warp
            if greedy_warp is not None and greedy_warp.state is ready:
                if can_issue is None or can_issue(greedy_warp):
                    return greedy_warp
                # Greedy warp blocked at issue: make it findable again and
                # let the age order decide below.
                heapq.heappush(heap, (self.priority_key(greedy_warp),
                                      greedy_warp.epoch, greedy_warp))
                self._greedy_warp = None
        picked = None
        skipped: list[tuple] = []
        scans = 0
        while heap:
            entry = heappop(heap)
            _, epoch, warp = entry
            if warp.state is not ready or warp.epoch != epoch:
                continue  # stale entry
            if can_issue is None or can_issue(warp):
                picked = warp
                break
            skipped.append(entry)
            scans += 1
            if scans >= self.SCAN_LIMIT:
                break
        for entry in skipped:
            heapq.heappush(heap, entry)
        if self.greedy:
            self._greedy_warp = picked
        return picked

    def on_issue(self, warp: Warp, now: int) -> None:
        """Bookkeeping after ``warp`` issued at cycle ``now``."""
        warp.last_issue = now

    @property
    def pending_entries(self) -> int:
        """Heap size (includes stale entries; for tests/diagnostics)."""
        return len(self._heap)


class LRRScheduler(WarpScheduler):
    """Loose round robin — least recently issued warp first."""

    name = "lrr"
    greedy = False
    __slots__ = ()

    def priority_key(self, warp: Warp) -> tuple:
        return (warp.last_issue, warp.age_key)


class GTOScheduler(WarpScheduler):
    """Greedy-then-oldest (GPGPU-Sim's GTO)."""

    name = "gto"
    greedy = True
    __slots__ = ()

    def priority_key(self, warp: Warp) -> tuple:
        return warp.age_key


class BAWSScheduler(WarpScheduler):
    """Block-aware warp scheduler (the paper's companion to BCS).

    Priority: oldest *block* of CTAs first — but *fair* (least recently
    issued) among the warps inside a block.  Strict age order inside the
    block would reduce to GTO and let the younger sibling CTA fall behind;
    fairness keeps the block's CTAs temporally aligned, so the halo lines
    one sibling fetches are still L1-resident (or MSHR-pending, which
    merges) when the other touches them.
    """

    name = "baws"
    greedy = True
    __slots__ = ()

    def priority_key(self, warp: Warp) -> tuple:
        return (warp.cta.block_seq, warp.last_issue, warp.age_key)


class TwoLevelScheduler(WarpScheduler):
    """Two-level round robin (Narasiman et al., MICRO 2011) — approximate.

    Warps are split into a small *active set* scheduled round-robin and a
    *pending* pool.  When an active warp issues a long-latency memory
    instruction it is demoted and a pending warp promoted, so the active
    set's warps reach their memory instructions at *staggered* times instead
    of all at once (better latency overlap than pure LRR, without GTO's
    aggressive age priority).

    Approximation: membership is updated at issue/pick time rather than by
    a dedicated demotion pipeline; the ready-heap key is
    ``(not active, last_issue, age)``, re-snapshotted whenever a warp
    re-enters READY, so stale membership only ever persists for stale heap
    entries that are skipped anyway.
    """

    name = "two-level"
    greedy = False
    ACTIVE_SET_SIZE = 8

    __slots__ = ("_active",)

    def __init__(self) -> None:
        super().__init__()
        self._active: dict[Warp, None] = {}

    def priority_key(self, warp: Warp) -> tuple:
        return (warp not in self._active, warp.last_issue, warp.age_key)

    def on_issue(self, warp: Warp, now: int) -> None:
        super().on_issue(warp, now)
        if warp.program[warp.pc - 1].is_memory:
            # Long-latency operation: demote from the active set.
            self._active.pop(warp, None)
        elif warp not in self._active:
            self._promote(warp)

    def _promote(self, warp: Warp) -> None:
        if len(self._active) >= self.ACTIVE_SET_SIZE:
            # Evict a memory-blocked member; if none, the oldest entry.
            victim = next((w for w in self._active
                           if w.state == WarpState.WAIT_MEM), None)
            if victim is None:
                victim = next(iter(self._active))
            del self._active[victim]
        self._active[warp] = None

    @property
    def active_set_size(self) -> int:
        return len(self._active)


class SWLScheduler(GTOScheduler):
    """Static warp limiting (SWL, after Rogers et al. MICRO 2012's baseline):
    GTO restricted to at most ``warp_limit`` member warps per scheduler.

    Warp-granularity throttling is the alternative design point to the
    paper's CTA-granularity LCS: it can stop *between* CTA sizes, but holds
    whole CTAs' resources (registers, shared memory, slots) hostage while
    only some of their warps run — which is exactly the paper's argument
    for doing it at CTA granularity.  Membership is sticky: the oldest
    warps join until the limit is reached, and a slot frees only when a
    member exits.  Used by experiment E17.
    """

    name = "swl"

    __slots__ = ("warp_limit", "_members")

    def __init__(self, warp_limit: int = 8) -> None:
        super().__init__()
        if warp_limit < 1:
            raise ValueError("warp_limit must be >= 1")
        self.warp_limit = warp_limit
        self._members: set[Warp] = set()

    def priority_key(self, warp: Warp) -> tuple:
        return (warp not in self._members, warp.age_key)

    def pick(self, can_issue=None) -> Warp | None:
        def member_can_issue(warp: Warp) -> bool:
            if not self._admit(warp):
                return False
            return can_issue is None or can_issue(warp)

        return super().pick(member_can_issue)

    def _admit(self, warp: Warp) -> bool:
        if warp in self._members:
            return True
        if len(self._members) < self.warp_limit:
            self._members.add(warp)
            return True
        return False

    def on_issue(self, warp: Warp, now: int) -> None:
        super().on_issue(warp, now)
        if warp.program[warp.pc - 1].op is Op.EXIT:
            self._members.discard(warp)

    @property
    def member_count(self) -> int:
        return len(self._members)


def swl_factory(warp_limit: int) -> Callable[[], "SWLScheduler"]:
    """A zero-arg factory for SWL at a given per-scheduler warp limit."""
    def factory() -> SWLScheduler:
        return SWLScheduler(warp_limit=warp_limit)

    factory.name = f"swl-{warp_limit}"  # type: ignore[attr-defined]
    return factory


_REGISTRY: dict[str, type[WarpScheduler]] = {
    cls.name: cls for cls in (LRRScheduler, GTOScheduler, BAWSScheduler,
                              TwoLevelScheduler, SWLScheduler)
}


def warp_scheduler_factory(name: str) -> Callable[[], WarpScheduler]:
    """Return a zero-arg factory for the named policy ('lrr'/'gto'/'baws')."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown warp scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls


def available_warp_schedulers() -> tuple[str, ...]:
    """Names accepted by :func:`warp_scheduler_factory` and ``simulate``."""
    return tuple(sorted(_REGISTRY))
