"""Correctness armor for the simulator: four independent layers.

1. :mod:`~repro.verify.golden` — a fingerprint-keyed, digest-verified
   **golden-result store** with a pinned (kernel x CTA scheduler x warp
   scheduler x config) matrix; the drift gate every perf PR must pass.
2. :mod:`~repro.verify.backends` — a **backend-parity sweep** running the
   vector-capable cells of the same matrix on both simulator cores
   (object and vector) and diffing bitwise.
3. :mod:`~repro.verify.refmodel` — a deliberately unoptimized
   **differential reference model** of the issue/select hot path,
   cross-checked cycle-window-by-window against the tuned simulator.
4. :mod:`~repro.verify.fuzzer` — a seeded **metamorphic + property
   fuzzer** with shrinking, asserting semantic invariants over hundreds
   of generated kernel/config cases.

Entry point: the ``repro-verify`` CLI (:mod:`~repro.verify.cli`).
Failures from every layer render to JSONL triage artifacts
(:mod:`~repro.verify.artifacts`).
"""

from .artifacts import (ARTIFACT_VERSION, DEFAULT_REPORT_DIR,
                        read_failure_artifact, write_failure_artifact)
from .backends import (ParityReport, ParityVerdict, parity_matrix,
                       verify_backends)
from .fuzzer import (INVARIANTS, FuzzCase, FuzzError, FuzzFailure,
                     FuzzReport, case_seeds, check_case, check_invariant,
                     run_fuzz, shrink)
from .golden import (DEFAULT_GOLDEN_ROOT, DRIFT_LANES, CellVerdict,
                     GoldenCell, GoldenError, GoldenReport, GoldenStore,
                     canonical_json, canonical_result, classify_drift,
                     diff_paths, golden_matrix, result_digest, split_lanes,
                     verify_goldens)
from .refmodel import (DEFAULT_WINDOW, REF_SUPPORTED, CrossCheckResult,
                       RefModelError, compare_runs, cross_check,
                       crosscheck_matrix, reference_run,
                       reference_simulate)

__all__ = [
    "ARTIFACT_VERSION", "DEFAULT_GOLDEN_ROOT", "DEFAULT_REPORT_DIR",
    "DEFAULT_WINDOW", "DRIFT_LANES", "INVARIANTS", "REF_SUPPORTED",
    "CellVerdict", "CrossCheckResult", "FuzzCase", "FuzzError",
    "FuzzFailure", "FuzzReport", "GoldenCell", "GoldenError",
    "GoldenReport", "GoldenStore", "ParityReport", "ParityVerdict",
    "RefModelError",
    "canonical_json", "canonical_result", "case_seeds", "check_case",
    "check_invariant",
    "classify_drift", "compare_runs", "cross_check", "crosscheck_matrix",
    "diff_paths", "golden_matrix", "parity_matrix",
    "read_failure_artifact",
    "reference_run", "reference_simulate", "result_digest", "run_fuzz",
    "shrink", "split_lanes", "verify_backends", "verify_goldens",
    "write_failure_artifact",
]
