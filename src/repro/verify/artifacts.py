"""Structured JSONL failure artifacts for offline triage.

Every verification layer renders its failures as plain dicts
(``CellVerdict.to_record``, ``CrossCheckResult.to_record``,
``FuzzFailure.to_record``); this module is the single place that turns
those records into an on-disk artifact CI can upload.  One JSON object
per line, so ``jq``/``grep`` triage works without loading the file, plus
a leading header line describing the producing run.

Record ``kind`` values: ``"golden"`` (drift cells), ``"refmodel"``
(cross-check divergences), ``"fuzz"`` (shrunk invariant violations).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable

#: Format marker for the header line; bump on incompatible layout changes.
ARTIFACT_VERSION = 1

#: Default artifact location (CI uploads this directory wholesale).
DEFAULT_REPORT_DIR = Path(".repro-verify")


def write_failure_artifact(path: str | os.PathLike[str],
                           records: Iterable[dict[str, Any]], *,
                           command: str = "",
                           context: dict[str, Any] | None = None) -> int:
    """Write ``records`` to ``path`` as JSONL; returns the record count.

    The first line is a header object (``{"kind": "header", ...}``) with
    the artifact version, the producing command and any ``context`` the
    caller wants preserved (master seed, tier, store path).  The write is
    atomic (tmp file + rename) so a crashed run never leaves a truncated
    artifact for CI to upload.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header: dict[str, Any] = {
        "kind": "header",
        "version": ARTIFACT_VERSION,
        "command": command,
    }
    if context:
        header.update(context)
    count = 0
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                                    suffix=".jsonl")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True,
                                    default=str) + "\n")
            for record in records:
                handle.write(json.dumps(record, sort_keys=True,
                                        default=str) + "\n")
                count += 1
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return count


def read_failure_artifact(path: str | os.PathLike[str]
                          ) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read an artifact back; returns ``(header, records)``.

    Tolerates a trailing truncated line (a crash mid-append elsewhere
    must not make triage impossible) but requires a valid header.
    """
    header: dict[str, Any] | None = None
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue   # truncated tail — keep what we have
            if header is None:
                if obj.get("kind") != "header":
                    raise ValueError(
                        f"{path}: first record is not an artifact header")
                header = obj
            else:
                records.append(obj)
    if header is None:
        raise ValueError(f"{path}: empty artifact (no header line)")
    return header, records


__all__ = ["ARTIFACT_VERSION", "DEFAULT_REPORT_DIR",
           "read_failure_artifact", "write_failure_artifact"]
