"""Differential reference model for the tuned issue/select hot path.

``sim/sm.py`` and ``GPU._loop`` carry several "behaviour-identical"
specializations — the LD/ST-queue issue-gate trick
(``pick(None if len(ldst) < depth else qfull)``), the ``gate_blocked``
fast path, hoisted config attributes, the idle-SM skip mirror, and event
fast-forward.  Each was argued equivalent when it landed; this module is
the *standing* witness.  It re-implements the issue/select path in the
most boring way possible:

* :class:`ReferenceWarpScheduler` — a plain membership list, sorted by the
  policy's priority key at every pick (no lazy heap, no stale entries, no
  push-time key snapshots);
* :class:`ReferenceSM` — always calls ``pick(self._can_issue)`` with the
  full per-warp structural check, reading ``config.ldst_queue_depth``
  through the config object each time (no specialization, no hoists, no
  ``gate_blocked``);
* :class:`ReferenceGPU` — a single naive loop that ticks every SM every
  cycle (no idle skip, no fast-forward) and closes telemetry windows at
  the loop top exactly like the tuned loop.

:func:`cross_check` runs one :class:`~repro.harness.jobs.SimJob` through
*both* models with the same telemetry window and compares the windowed
timeline row by row: a specialization bug surfaces at the **first
divergent window** (cycle named), with the differing columns and a
minimized repro snippet, instead of as an end-of-run stat delta with no
location.  The final stats are compared bitwise as well.

Scope: ``lrr``, ``gto`` and ``baws`` (:data:`REF_SUPPORTED`).  For these
the heap's push-time keys are provably stable while a warp is READY, so
"sorted by current key" is the specification the tuned heap implements.
``two-level`` and ``swl`` mutate membership keys at pick/issue time and
are documented as approximate — a reference model would have to replicate
the approximation, which verifies nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from time import monotonic as _monotonic
from typing import Any

from ..harness.jobs import SimJob, build_policy
from ..sim.config import GPUConfig
from ..sim.gpu import GPU, SimulationDeadlock, SimulationTimeout
from ..sim.sm import SM
from ..sim.stats import CacheStats, RunResult
from ..sim.warp import Warp, WarpState
from ..telemetry.hub import TelemetryHub
from .golden import diff_paths

#: Warp schedulers the reference model covers (exact-specification set).
REF_SUPPORTED = frozenset({"lrr", "gto", "baws"})

#: Default cross-check window (cycles).  Small enough to localize a bug to
#: a tight cycle range, large enough to keep the row count manageable.
DEFAULT_WINDOW = 200


class RefModelError(ValueError):
    """The job is outside the reference model's exact-specification scope."""


# --------------------------------------------------------------------------- #
# reference warp schedulers
# --------------------------------------------------------------------------- #

class ReferenceWarpScheduler:
    """Specification-grade warp scheduler: sort the READY set every pick.

    Mirrors the tuned :class:`~repro.core.warp_schedulers.WarpScheduler`
    contract exactly — the greedy pointer, the bounded blocked-candidate
    scan (``SCAN_LIMIT``), picked-warp removal — but with none of the lazy
    heap machinery.  O(n log n) per pick, by design.
    """

    greedy = False
    name = "ref-base"
    #: Same bounded issue-stage scan as the tuned scheduler (a scheduler
    #: examines at most this many blocked candidates per cycle).
    SCAN_LIMIT = 6

    def __init__(self) -> None:
        self._ready: list[Warp] = []
        self._greedy_warp: Warp | None = None

    def priority_key(self, warp: Warp) -> tuple:
        raise NotImplementedError

    def on_ready(self, warp: Warp) -> None:
        if warp is self._greedy_warp:
            # The greedy pointer already guarantees this warp is
            # considered first while READY (tuned model skips the heap
            # push for the same reason).
            return
        if warp not in self._ready:
            self._ready.append(warp)

    def pick(self, can_issue=None) -> Warp | None:
        ready = WarpState.READY
        if self.greedy:
            greedy_warp = self._greedy_warp
            if greedy_warp is not None and greedy_warp.state is ready:
                if can_issue is None or can_issue(greedy_warp):
                    return greedy_warp
                # Blocked at issue: back into the candidate pool; age
                # order decides below (tuned: heap re-push).
                if greedy_warp not in self._ready:
                    self._ready.append(greedy_warp)
                self._greedy_warp = None
        # Drop warps that left READY (the tuned heap's stale-entry skip).
        self._ready = [warp for warp in self._ready if warp.state is ready]
        picked = None
        scans = 0
        for warp in sorted(self._ready, key=self.priority_key):
            if can_issue is None or can_issue(warp):
                picked = warp
                break
            scans += 1
            if scans >= self.SCAN_LIMIT:
                break
        if picked is not None:
            self._ready.remove(picked)
        if self.greedy:
            self._greedy_warp = picked
        return picked

    def on_issue(self, warp: Warp, now: int) -> None:
        warp.last_issue = now


class ReferenceLRR(ReferenceWarpScheduler):
    name = "ref-lrr"

    def priority_key(self, warp: Warp) -> tuple:
        return (warp.last_issue, warp.age_key)


class ReferenceGTO(ReferenceWarpScheduler):
    name = "ref-gto"
    greedy = True

    def priority_key(self, warp: Warp) -> tuple:
        return warp.age_key


class ReferenceBAWS(ReferenceWarpScheduler):
    name = "ref-baws"
    greedy = True

    def priority_key(self, warp: Warp) -> tuple:
        return (warp.cta.block_seq, warp.last_issue, warp.age_key)


_REF_REGISTRY = {"lrr": ReferenceLRR, "gto": ReferenceGTO,
                 "baws": ReferenceBAWS}


def reference_scheduler_factory(name: str):
    """A zero-arg factory for the reference scheduler of a tuned policy.

    The factory's ``name`` is the *tuned* policy name so the assembled
    ``RunResult.meta["warp_scheduler"]`` matches the tuned run bitwise.
    """
    try:
        cls = _REF_REGISTRY[name]
    except KeyError:
        raise RefModelError(
            f"warp scheduler {name!r} is outside the reference model's "
            f"scope; supported: {sorted(REF_SUPPORTED)} (two-level/swl "
            f"are documented-approximate policies)") from None

    def factory() -> ReferenceWarpScheduler:
        return cls()

    factory.name = name  # type: ignore[attr-defined]
    return factory


# --------------------------------------------------------------------------- #
# reference SM and GPU
# --------------------------------------------------------------------------- #

class ReferenceSM(SM):
    """The SM with every issue-stage specialization removed."""

    __slots__ = ()

    def tick(self, now: int) -> bool:
        active = False
        if self.ldst and not self.ldst_blocked:
            self._ldst_tick(now)
            active = True
        if self.num_ready:
            # No gate_blocked short-circuit, no qfull specialization: the
            # full structural predicate is evaluated for every candidate.
            for scheduler in self.schedulers:
                warp = scheduler.pick(self._can_issue)
                if warp is not None:
                    self._issue(warp, scheduler, now)
                    active = True
        return active

    def _can_issue(self, warp: Warp) -> bool:
        # Deliberately reads through config (no hoisted _ldst_depth).
        if warp.program[warp.pc].is_memory:
            return len(self.ldst) < self.config.ldst_queue_depth
        return True


class ReferenceGPU(GPU):
    """The GPU with the naive run loop: every SM, every cycle."""

    def __init__(self, config: GPUConfig | None = None,
                 warp_scheduler: str | tuple = "gto",
                 telemetry: TelemetryHub | None = None) -> None:
        if not isinstance(warp_scheduler, str):
            warp_scheduler = getattr(warp_scheduler, "name",
                                     str(warp_scheduler))
        factory = reference_scheduler_factory(warp_scheduler)
        super().__init__(config=config, warp_scheduler=factory,
                         telemetry=telemetry)
        self.sms = [ReferenceSM(self, sm_id, self.config, factory)
                    for sm_id in range(self.config.num_sms)]

    # Both loop variants funnel into one naive loop; the tuned/windowed
    # split exists only for the tuned model's per-cycle cost.
    def _loop(self, cta_scheduler, cycle_accurate,
              deadline=None, service=None) -> int:
        return self._naive_loop(cta_scheduler, None, deadline)

    def _loop_windowed(self, cta_scheduler, cycle_accurate, hub,
                       deadline=None, service=None) -> int:
        return self._naive_loop(cta_scheduler, hub, deadline)

    def _naive_loop(self, cta_scheduler, hub, deadline) -> int:
        events = self.events
        sms = self.sms
        max_cycles = self.config.max_cycles
        cycle = self.cycle
        window = hub.window if hub is not None else None
        boundary = ((cycle // window + 1) * window
                    if window is not None else None)
        while not cta_scheduler.done:
            if boundary is not None:
                # Loop-top close, exactly like the tuned windowed loop, so
                # both models sample identical machine states.
                while cycle >= boundary:
                    hub.close_window(boundary)
                    boundary += window
            if deadline is not None and _monotonic() >= deadline:
                self.cycle = cycle
                raise SimulationTimeout(
                    f"wall-clock timeout at cycle {cycle} (reference "
                    f"model); runs={self.runs!r}",
                    cycle=cycle, max_cycles=max_cycles, kind="wall")
            events.run_due(cycle)
            cta_scheduler.fill(cycle)
            active = False
            for sm in sms:
                if sm.tick(cycle):
                    active = True
            if not active and events.next_time() is None:
                self.cycle = cycle
                raise SimulationDeadlock(
                    f"cycle {cycle}: no progress possible (reference "
                    f"model); runs={self.runs!r}")
            cycle += 1
            if cycle > max_cycles:
                self.cycle = cycle
                raise SimulationTimeout(
                    f"exceeded max_cycles={max_cycles} (reference model); "
                    f"runs={self.runs!r}",
                    cycle=cycle, max_cycles=max_cycles, kind="max-cycles")
        return cycle


def supports(job: SimJob) -> bool:
    """Whether :func:`cross_check` can run this job exactly."""
    return isinstance(job.warp, str) and job.warp in REF_SUPPORTED


def reference_run(kernels, *, policy: tuple = ("rr",), warp: str = "gto",
                  config: GPUConfig | None = None,
                  timeline_window: int | None = None, trace: bool = False,
                  wall_timeout: float | None = None) -> RunResult:
    """Run kernels on the reference model; assembles the result exactly
    like :func:`repro.harness.runner.simulate` so the two are comparable
    bitwise.  Accepts live :class:`~repro.sim.kernel.Kernel` objects, so
    the fuzzer's generated (non-suite) kernels can be cross-checked too."""
    kernels = list(kernels)
    scheduler = build_policy(policy, kernels)
    telemetry = None
    if timeline_window is not None or trace:
        telemetry = TelemetryHub(window=timeline_window, trace=trace)
    gpu = ReferenceGPU(config=config, warp_scheduler=warp,
                       telemetry=telemetry)
    gpu.run(scheduler, wall_timeout=wall_timeout)

    l1_total = CacheStats()
    for sm in gpu.sms:
        l1_total.add(sm.l1.stats)
    meta: dict = {
        "warp_scheduler": gpu.warp_scheduler_name,
        "cta_scheduler": scheduler.name,
        "num_sms": gpu.config.num_sms,
        "kernels": [kernel.name for kernel in kernels],
        "lcs_decision": getattr(scheduler, "decision", None),
    }
    if telemetry is not None:
        timeline = telemetry.timeline_result()
        if timeline is not None:
            meta["timeline"] = timeline
        if telemetry.trace_enabled:
            meta["trace"] = telemetry.trace_events()
    return RunResult(
        cycles=gpu.cycle,
        instructions=gpu.total_issued,
        kernels={run.kernel.name: run.stats for run in gpu.runs},
        l1=l1_total,
        l2=gpu.mem.l2_stats(),
        dram=gpu.mem.dram.stats,
        issued_by_sm=[sm.issued for sm in gpu.sms],
        cta_limits=scheduler.limits_snapshot(),
        meta=meta,
    )


def reference_simulate(job: SimJob, *,
                       wall_timeout: float | None = None) -> RunResult:
    """:func:`reference_run` for a declarative :class:`SimJob`."""
    if not supports(job):
        raise RefModelError(
            f"job warp scheduler {job.warp!r} is outside the reference "
            f"model's scope; supported: {sorted(REF_SUPPORTED)}")
    return reference_run(job.build_kernels(), policy=job.policy,
                         warp=job.warp, config=job.config,
                         timeline_window=job.timeline_window,
                         trace=job.trace, wall_timeout=wall_timeout)


# --------------------------------------------------------------------------- #
# the cross-check
# --------------------------------------------------------------------------- #

def _config_expr(config: GPUConfig) -> str:
    """A constructor expression for the non-default fields of a config."""
    defaults = GPUConfig()
    overrides = {f.name: getattr(config, f.name) for f in fields(GPUConfig)
                 if getattr(config, f.name) != getattr(defaults, f.name)}
    if not overrides:
        return "GPUConfig()"
    args = ", ".join(f"{name}={value!r}"
                     for name, value in sorted(overrides.items()))
    return f"GPUConfig({args})"


@dataclass
class CrossCheckResult:
    """What diverged (if anything) between the tuned and reference models."""

    label: str
    window: int
    #: A minimal self-contained script reproducing the divergence.
    repro: str = ""
    diverged: bool = False
    #: Index of the first divergent timeline window, or None.
    first_window: int | None = None
    #: End-boundary cycle of that window (the bug lies in
    #: ``(window_cycle - window, window_cycle]``), or None.
    window_cycle: int | None = None
    #: Column-level diffs of the first divergent window.
    window_diffs: list[tuple[str, Any, Any]] = field(default_factory=list)
    #: Bitwise diffs of the final result renderings (timeline excluded).
    stat_diffs: list[tuple[str, Any, Any]] = field(default_factory=list)
    tuned_cycles: int = 0
    reference_cycles: int = 0

    def summary(self) -> str:
        head = f"cross-check {self.label} window={self.window}"
        if not self.diverged:
            return (f"{head}: OK (tuned == reference, "
                    f"{self.tuned_cycles} cycles)")
        lines = [f"{head}: DIVERGED"]
        if self.first_window is not None:
            lines.append(
                f"  first divergent window: #{self.first_window} "
                f"(cycles {self.window_cycle - self.window}.."
                f"{self.window_cycle}]")
            for path, tuned, ref in self.window_diffs[:8]:
                lines.append(f"    {path}: tuned={tuned!r} "
                             f"reference={ref!r}")
        if self.stat_diffs:
            lines.append(f"  final-stat diffs ({len(self.stat_diffs)}):")
            for path, tuned, ref in self.stat_diffs[:8]:
                lines.append(f"    {path}: tuned={tuned!r} "
                             f"reference={ref!r}")
        if self.repro:
            lines.append("  repro:")
            lines.extend("    " + line
                         for line in self.repro.splitlines())
        return "\n".join(lines)

    def to_record(self) -> dict[str, Any]:
        """JSONL triage-artifact rendering (see repro.verify.artifacts)."""
        record: dict[str, Any] = {
            "kind": "refmodel",
            "label": self.label,
            "window": self.window,
            "diverged": self.diverged,
            "tuned_cycles": self.tuned_cycles,
            "reference_cycles": self.reference_cycles,
        }
        if self.diverged:
            record["first_window"] = self.first_window
            record["window_cycle"] = self.window_cycle
            record["window_diffs"] = [
                {"path": path, "tuned": tuned, "reference": ref}
                for path, tuned, ref in self.window_diffs[:20]]
            record["stat_diffs"] = [
                {"path": path, "tuned": tuned, "reference": ref}
                for path, tuned, ref in self.stat_diffs[:20]]
            record["repro"] = self.repro
        return record


def _timeline_rows(timeline: dict[str, Any]) -> list[dict[str, Any]]:
    rows = []
    columns = timeline["columns"]
    for i, cycle in enumerate(timeline["cycles"]):
        row: dict[str, Any] = {"cycle": cycle,
                               "ctas_per_sm": timeline["ctas_per_sm"][i]}
        for name, values in columns.items():
            row[name] = values[i]
        rows.append(row)
    return rows


def compare_runs(tuned: RunResult, reference: RunResult, *, window: int,
                 label: str, repro: str = "") -> CrossCheckResult:
    """Diff a tuned run against a reference run of the same description.

    When both results carry a timeline sampled at ``window`` cycles the
    comparison walks the two timelines row by row and reports the first
    divergent window (index + cycle range + differing columns); timeline-
    free runs fall back to bitwise diffs of the final statistics only.
    """
    tuned_dict = tuned.to_dict()
    reference_dict = reference.to_dict()
    # to_dict wraps the timeline in its meta marker (see repro.sim.stats).
    tuned_wrap = tuned_dict["meta"].pop("timeline", None)
    reference_wrap = reference_dict["meta"].pop("timeline", None)
    tuned_timeline = tuned_wrap["__timeline__"] if tuned_wrap else None
    reference_timeline = (reference_wrap["__timeline__"]
                          if reference_wrap else None)

    result = CrossCheckResult(label=label, window=window, repro=repro,
                              tuned_cycles=tuned.cycles,
                              reference_cycles=reference.cycles)
    if (tuned_timeline is None) != (reference_timeline is None):
        result.diverged = True
        result.window_diffs = [("<timeline presence>",
                                tuned_timeline is not None,
                                reference_timeline is not None)]

    tuned_rows = _timeline_rows(tuned_timeline) if tuned_timeline else []
    reference_rows = (_timeline_rows(reference_timeline)
                      if reference_timeline else [])
    for i in range(min(len(tuned_rows), len(reference_rows))):
        diffs = diff_paths(tuned_rows[i], reference_rows[i])
        if diffs:
            result.diverged = True
            result.first_window = i
            result.window_cycle = max(tuned_rows[i]["cycle"],
                                      reference_rows[i]["cycle"])
            result.window_diffs = diffs
            break
    else:
        if len(tuned_rows) != len(reference_rows):
            shorter = min(len(tuned_rows), len(reference_rows))
            result.diverged = True
            result.first_window = shorter
            longer = tuned_rows if len(tuned_rows) > shorter \
                else reference_rows
            result.window_cycle = longer[shorter]["cycle"]
            result.window_diffs = [("<window count>", len(tuned_rows),
                                    len(reference_rows))]

    result.stat_diffs = diff_paths(tuned_dict, reference_dict)
    if result.stat_diffs:
        result.diverged = True
    return result


def cross_check(job: SimJob, *, window: int = DEFAULT_WINDOW,
                wall_timeout: float | None = None) -> CrossCheckResult:
    """Run ``job`` on both models and localize any divergence.

    The job is re-described with ``timeline_window=window`` so both runs
    sample the identical probe set at identical loop-top boundaries; see
    :func:`compare_runs` for the comparison semantics.
    """
    if window < 1:
        raise RefModelError(f"window must be >= 1, got {window}")
    if not supports(job):
        raise RefModelError(
            f"job warp scheduler {job.warp!r} is outside the reference "
            f"model's scope; supported: {sorted(REF_SUPPORTED)}")
    if job.timeline_window != window:
        job = replace(job, timeline_window=window)
    tuned = job.execute(wall_timeout=wall_timeout)
    reference = reference_simulate(job, wall_timeout=wall_timeout)
    repro = (
        "from repro.harness.jobs import SimJob\n"
        "from repro.sim.config import GPUConfig\n"
        "from repro.verify.refmodel import cross_check\n"
        f"job = SimJob(names={tuple(job.names)!r}, "
        f"scale={job.scale!r}, seed={job.seed!r},\n"
        f"             warp={job.warp!r}, policy={job.policy!r},\n"
        f"             config={_config_expr(job.config)})\n"
        f"print(cross_check(job, window={window}).summary())\n"
    )
    label = (f"{'+'.join(job.names)} policy={job.policy} warp={job.warp}")
    return compare_runs(tuned, reference, window=window, label=label,
                        repro=repro)


def crosscheck_matrix() -> list[SimJob]:
    """The pinned cross-check suite for ``repro-verify refmodel``.

    Small-config, short runs (sub-second each) chosen so every in-scope
    warp scheduler meets every paper-relevant CTA policy, plus one
    multi-kernel cell — broad enough that a hot-path specialization bug
    in any issue/select branch shows up, small enough for per-PR CI.
    """
    small = GPUConfig.small()
    jobs = [
        SimJob(names=("kmeans",), scale=0.05, warp=warp, policy=policy,
               config=small)
        for warp in sorted(REF_SUPPORTED)
        for policy in (("rr",), ("lcs",), ("bcs", 2, None))
    ]
    jobs += [
        SimJob(names=("stencil",), scale=0.05, warp="baws",
               policy=("lcs+bcs", 2, "tail", None), config=small),
        SimJob(names=("spmv",), scale=0.05, warp="gto", policy=("dyncta",),
               config=small),
        SimJob(names=("compute", "kmeans"), scale=0.05, warp="gto",
               policy=("spatial",), config=small),
    ]
    return jobs


__all__ = ["CrossCheckResult", "DEFAULT_WINDOW", "REF_SUPPORTED",
           "RefModelError", "ReferenceBAWS", "ReferenceGTO", "ReferenceGPU",
           "ReferenceLRR", "ReferenceSM", "ReferenceWarpScheduler",
           "compare_runs", "cross_check", "crosscheck_matrix",
           "reference_run", "reference_scheduler_factory",
           "reference_simulate", "supports"]
