"""Golden-result regression store: the drift gate for the simulator.

Every "behaviour-identical" hot-path optimization so far has been guarded
only by the tier-1 tests; this module pins a whole *matrix* of end-to-end
results instead.  A :class:`GoldenStore` holds one digest-verified JSON
entry per matrix cell — the full :class:`~repro.sim.stats.RunResult`
rendering of a pinned ``(kernels x CTA scheduler x warp scheduler x
config)`` simulation, keyed by a human-readable label and guarded by the
job's :meth:`~repro.harness.jobs.SimJob.fingerprint` (so a silently edited
matrix definition is reported as *stale*, never silently re-baselined) and
a sha256 digest of the stored result payload (so a corrupted or
hand-edited golden is reported as *tampered*, never trusted).

:func:`verify_goldens` re-runs the matrix through the batch engine with
the persistent result cache **bypassed** (a drift gate that reads its own
cache would happily confirm stale numbers) and compares bitwise: any
differing scalar anywhere in the canonical result rendering is drift.
Drift is classified per lane —

* ``stats``     — the simulated statistics themselves (cycles, IPC,
  cache/DRAM counters, per-kernel numbers): the lane that invalidates
  paper claims;
* ``timeline``  — the windowed telemetry series diverged;
* ``telemetry`` — the structured event trace or other meta diverged.

— so a perturbation that only moves probe samples is distinguishable from
one that moves the reproduced results.  The ``repro-verify`` CLI
(:mod:`repro.verify.cli`) drives this and exits non-zero on any drift.

Refreshing goldens after an *intentional* model change::

    repro-verify golden --tier smoke --update
    repro-verify golden --tier full  --update

(see docs/ROBUSTNESS.md, "Verification").
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from ..harness.cache import ResultCache
from ..harness.engine import run_batch
from ..harness.jobs import SimJob
from ..sim.config import GPUConfig

#: On-disk golden entry format.
_GOLDEN_FORMAT = 1

#: Drift lanes, in triage-priority order.
DRIFT_LANES = ("stats", "timeline", "telemetry")

#: Meta keys that belong to the ``telemetry`` lane (everything else in the
#: result rendering outside ``meta.timeline`` is the ``stats`` lane).
_TELEMETRY_META_KEYS = ("trace",)


class GoldenError(RuntimeError):
    """A golden store entry is unusable (tampered, wrong format)."""


def _repo_root() -> Path:
    """The repository root for src-layout checkouts (fallback: CWD)."""
    root = Path(__file__).resolve().parents[3]
    if (root / "goldens").is_dir() or (root / "pyproject.toml").is_file():
        return root
    return Path.cwd()


#: Default location of the committed golden matrices.
DEFAULT_GOLDEN_ROOT = _repo_root() / "goldens"


def canonical_json(payload: Any) -> str:
    """The canonical rendering used for digests and bitwise comparison."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def result_digest(result_dict: dict[str, Any]) -> str:
    return hashlib.sha256(
        canonical_json(result_dict).encode("utf-8")).hexdigest()


def canonical_result(result_dict: dict[str, Any]) -> dict[str, Any]:
    """Round-trip a result dict through canonical JSON.

    Goldens live on disk as JSON, which erases the tuple/list distinction
    (e.g. LCS decision riders carry tuples in a live ``to_dict()``).  Both
    sides of every diff must pass through this so only *value* drift is
    reported, never serialization-shape drift.
    """
    return json.loads(canonical_json(result_dict))


# --------------------------------------------------------------------------- #
# the pinned matrix
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class GoldenCell:
    """One pinned matrix cell: a label and the job that reproduces it."""

    label: str
    job: SimJob

    def __post_init__(self) -> None:
        if not self.label or any(c in self.label for c in "/\\ \t\n"):
            raise GoldenError(f"bad golden cell label {self.label!r} "
                              "(no spaces or path separators)")


def _cell(label: str, names, policy, warp="gto", config=None,
          scale=0.05, **riders) -> GoldenCell:
    names = (names,) if isinstance(names, str) else tuple(names)
    return GoldenCell(label, SimJob(
        names=names, scale=scale, policy=policy, warp=warp,
        config=config if config is not None else GPUConfig(), **riders))


def golden_matrix(tier: str = "smoke") -> list[GoldenCell]:
    """The pinned verification matrix for a tier (``smoke`` or ``full``).

    Cells are chosen to cover every scheduling layer the paper's claims
    rest on: the occupancy baseline, LCS (lazy CTA scheduling), BCS+BAWS
    (block CTA scheduling with the block-aware warp scheduler), the
    combined policy, DynCTA, concurrent-kernel execution, and both
    hardware classes.  Two cells carry telemetry riders so the
    ``timeline`` and ``telemetry`` drift lanes are exercised bitwise too.
    """
    small = GPUConfig.small()
    smoke = [
        _cell("kmeans-rr-gto-fermi", "kmeans", ("rr",)),
        _cell("kmeans-lcs-gto-fermi", "kmeans", ("lcs",)),
        _cell("stencil-bcs2-baws-fermi", "stencil", ("bcs", 2, None),
              warp="baws"),
        _cell("compute-rr-lrr-fermi", "compute", ("rr",), warp="lrr"),
        _cell("kmeans-static2-gto-small", "kmeans", ("static", 2),
              config=small),
        _cell("stencil-rr-twolevel-small", "stencil", ("rr",),
              warp="two-level", config=small),
        _cell("spmv-dyncta-gto-small", "spmv", ("dyncta",), config=small),
        _cell("kmeans-rr-gto-fermi-timeline", "kmeans", ("rr",),
              timeline_window=500),
        _cell("kmeans-lcs-gto-small-trace", "kmeans", ("lcs",),
              config=small, trace=True),
    ]
    if tier == "smoke":
        return smoke
    if tier != "full":
        raise GoldenError(f"unknown golden tier {tier!r}; "
                          f"use 'smoke' or 'full'")
    kepler = GPUConfig.kepler_class()
    full = smoke + [
        # LCS across more benchmarks and both decision rules.
        _cell("bfs-lcs-gto-fermi", "bfs", ("lcs",)),
        _cell("spmv-lcs-gto-fermi", "spmv", ("lcs",)),
        _cell("streaming-lcs-gto-fermi", "streaming", ("lcs",)),
        _cell("kmeans-lcs-coverage-gto-fermi", "kmeans",
              ("lcs", "coverage", None)),
        _cell("kmeans-lcs-threshold-gto-fermi", "kmeans",
              ("lcs", "threshold", None)),
        # BCS / combined / block-aware interplay.
        _cell("stencil-lcsbcs2-baws-fermi", "stencil",
              ("lcs+bcs", 2, "tail", None), warp="baws"),
        _cell("hotspot-bcs2-baws-fermi", "hotspot", ("bcs", 2, None),
              warp="baws"),
        _cell("stencil-bcs2-gto-fermi", "stencil", ("bcs", 2, None)),
        # Warp-scheduler axis under the occupancy baseline.
        _cell("kmeans-rr-baws-fermi", "kmeans", ("rr",), warp="baws"),
        _cell("kmeans-rr-twolevel-fermi", "kmeans", ("rr",),
              warp="two-level"),
        _cell("kmeans-rr-swl8-fermi", "kmeans", ("rr",), warp=("swl", 8)),
        _cell("stencil-rr-lrr-fermi", "stencil", ("rr",), warp="lrr"),
        # Alternative CTA schedulers.
        _cell("kmeans-depthfirst-gto-fermi", "kmeans", ("depth-first",)),
        _cell("matmul-dyncta-gto-fermi", "matmul", ("dyncta",)),
        _cell("gemv-static3-gto-fermi", "gemv", ("static", 3)),
        # Concurrent kernel execution.
        _cell("kmeans+stencil-sequential-gto-fermi", ("kmeans", "stencil"),
              ("sequential",)),
        _cell("kmeans+stencil-spatial-gto-fermi", ("kmeans", "stencil"),
              ("spatial",)),
        _cell("kmeans+compute-smk-gto-fermi", ("kmeans", "compute"),
              ("smk",)),
        _cell("kmeans+stencil-mixed-gto-fermi", ("kmeans", "stencil"),
              ("mixed", "tail", None)),
        # Hardware-class robustness.
        _cell("kmeans-rr-gto-kepler", "kmeans", ("rr",), config=kepler),
        _cell("kmeans-lcs-gto-kepler", "kmeans", ("lcs",), config=kepler),
        # A larger-scale cell so scale-dependent drift is visible.
        _cell("kmeans-lcs-gto-fermi-s10", "kmeans", ("lcs",), scale=0.10),
        _cell("stencil-bcs2-baws-fermi-s10", "stencil", ("bcs", 2, None),
              warp="baws", scale=0.10),
    ]
    labels = [cell.label for cell in full]
    if len(labels) != len(set(labels)):
        raise GoldenError("duplicate labels in the golden matrix")
    return full


# --------------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------------- #

class GoldenStore:
    """A directory of ``<label>.json`` golden entries (one per cell).

    Writes are atomic (tmp file + ``os.replace``) like the result cache,
    so an interrupted ``--update`` can leave a ``.tmp-*`` stray but never
    a half-written golden; strays are removed by :meth:`clear_strays`
    (and ``make clean-state``).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"GoldenStore({str(self.root)!r}, entries={len(self)})"

    def path_for(self, label: str) -> Path:
        return self.root / f"{label}.json"

    def put(self, cell: GoldenCell, result_dict: dict[str, Any]) -> Path:
        entry = {
            "format": _GOLDEN_FORMAT,
            "label": cell.label,
            "fingerprint": cell.job.fingerprint(),
            "digest": result_digest(result_dict),
            "result": result_dict,
        }
        payload = json.dumps(entry, sort_keys=True, indent=1)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=".tmp-",
                                        suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            path = self.path_for(cell.label)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def get(self, label: str) -> dict[str, Any] | None:
        """The verified entry for a label, or None when absent.

        Raises :class:`GoldenError` when the entry exists but cannot be
        trusted (bad JSON, unknown format, digest mismatch) — a golden
        that fails its own integrity check must never silently pass or
        silently miss.
        """
        path = self.path_for(label)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(raw)
            if entry.get("format") != _GOLDEN_FORMAT:
                raise ValueError(f"unknown golden format in {path}")
            result = entry["result"]
            digest = entry["digest"]
        except (ValueError, KeyError, TypeError) as error:
            raise GoldenError(f"golden entry {path} is unreadable: "
                              f"{error}") from error
        if result_digest(result) != digest:
            raise GoldenError(f"golden entry {path} failed its digest "
                              "check (tampered or corrupted); regenerate "
                              "with --update")
        return entry

    def labels(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json")
                      if not p.name.startswith(".tmp-"))

    def __len__(self) -> int:
        return len(self.labels())

    def clear_strays(self) -> int:
        """Remove ``.tmp-*`` leftovers from interrupted updates."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in self.root.glob(".tmp-*"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# --------------------------------------------------------------------------- #
# bitwise diffing and drift classification
# --------------------------------------------------------------------------- #

def diff_paths(golden: Any, fresh: Any, prefix: str = "",
               limit: int = 2048) -> list[tuple[str, Any, Any]]:
    """Every leaf path where two JSON renderings differ, as
    ``(path, golden_value, fresh_value)`` tuples (depth-first order)."""
    diffs: list[tuple[str, Any, Any]] = []

    def walk(a: Any, b: Any, path: str) -> None:
        if len(diffs) >= limit:
            return
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                sub = f"{path}.{key}" if path else str(key)
                if key not in a:
                    diffs.append((sub, "<absent>", b[key]))
                elif key not in b:
                    diffs.append((sub, a[key], "<absent>"))
                else:
                    walk(a[key], b[key], sub)
            return
        if isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                diffs.append((f"{path}.<len>", len(a), len(b)))
            for i, (x, y) in enumerate(zip(a, b)):
                walk(x, y, f"{path}[{i}]")
            return
        # Bitwise: exact type-and-value equality (1 != 1.0 is drift —
        # a counter silently becoming a float is a real change).
        if type(a) is not type(b) or a != b:
            diffs.append((path, a, b))

    walk(golden, fresh, prefix)
    return diffs


def split_lanes(result_dict: dict[str, Any]) -> dict[str, Any]:
    """Split a RunResult rendering into its drift-lane projections."""
    meta = dict(result_dict.get("meta", {}))
    timeline = meta.pop("timeline", None)
    telemetry = {key: meta.pop(key) for key in _TELEMETRY_META_KEYS
                 if key in meta}
    stats = {key: value for key, value in result_dict.items()
             if key != "meta"}
    stats["meta"] = meta   # scheduler names, kernel list, lcs_decision...
    return {"stats": stats, "timeline": timeline, "telemetry": telemetry}


def classify_drift(golden_result: dict[str, Any],
                   fresh_result: dict[str, Any]
                   ) -> dict[str, list[tuple[str, Any, Any]]]:
    """Per-lane diffs between two result renderings (empty = no drift)."""
    golden_lanes = split_lanes(golden_result)
    fresh_lanes = split_lanes(fresh_result)
    drift: dict[str, list[tuple[str, Any, Any]]] = {}
    for lane in DRIFT_LANES:
        diffs = diff_paths(golden_lanes[lane], fresh_lanes[lane])
        if diffs:
            drift[lane] = diffs
    return drift


# --------------------------------------------------------------------------- #
# verification
# --------------------------------------------------------------------------- #

@dataclass
class CellVerdict:
    """What the gate concluded about one matrix cell.

    ``status``: ``ok`` | ``drift`` | ``missing`` (no golden on disk) |
    ``stale`` (the matrix definition changed since the golden was taken) |
    ``error`` (the re-run itself failed) | ``updated``.
    """

    label: str
    fingerprint: str
    status: str
    lanes: list[str] = field(default_factory=list)
    diffs: dict[str, list[tuple[str, Any, Any]]] = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "updated")

    def to_record(self) -> dict[str, Any]:
        """JSONL triage-artifact rendering (see repro.verify.artifacts)."""
        record: dict[str, Any] = {
            "kind": "golden",
            "label": self.label,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "lanes": list(self.lanes),
        }
        if self.error:
            record["error"] = self.error
        if self.diffs:
            record["diffs"] = {
                lane: [{"path": path, "golden": a, "fresh": b}
                       for path, a, b in entries[:20]]
                for lane, entries in self.diffs.items()
            }
        return record


@dataclass
class GoldenReport:
    """Outcome of one golden-matrix verification (or update) pass."""

    tier: str
    verdicts: list[CellVerdict] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    def count(self, status: str) -> int:
        return sum(1 for v in self.verdicts if v.status == status)

    def failures(self) -> list[CellVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def summary_line(self) -> str:
        parts = [f"{self.count('ok') + self.count('updated')} ok"]
        for status in ("drift", "missing", "stale", "error"):
            if self.count(status):
                parts.append(f"{self.count(status)} {status}")
        return (f"golden[{self.tier}]: {len(self.verdicts)} cell(s), "
                + ", ".join(parts) + f" in {self.elapsed:.1f}s")


def verify_goldens(cells: Sequence[GoldenCell], store: GoldenStore, *,
                   update: bool = False, workers: int = 1,
                   progress: Callable[[int, int], None] | None = None,
                   ) -> GoldenReport:
    """Re-run every cell (cache-bypassing) and diff against the store.

    ``update=True`` re-baselines: every cell's fresh result is written to
    the store and reported ``updated``.  Runs go through
    :func:`repro.harness.engine.run_batch` with ``cache=None`` — the
    drift gate must *never* replay the persistent result cache it is
    meant to audit.
    """
    import time
    started = time.perf_counter()
    report = GoldenReport(tier=store.root.name or "custom")
    labels = [cell.label for cell in cells]
    if len(labels) != len(set(labels)):
        raise GoldenError("duplicate labels in the golden matrix")

    batch = run_batch([cell.job for cell in cells], workers=workers,
                      cache=None, progress=progress)
    for cell, outcome in zip(cells, batch.outcomes):
        fingerprint = cell.job.fingerprint()
        if outcome.result is None:
            report.verdicts.append(CellVerdict(
                cell.label, fingerprint, "error",
                error=f"{outcome.status}: {outcome.error}"))
            continue
        fresh = canonical_result(outcome.result.to_dict())
        if update:
            store.put(cell, fresh)
            report.verdicts.append(CellVerdict(cell.label, fingerprint,
                                               "updated"))
            continue
        try:
            entry = store.get(cell.label)
        except GoldenError as error:
            report.verdicts.append(CellVerdict(cell.label, fingerprint,
                                               "error", error=str(error)))
            continue
        if entry is None:
            report.verdicts.append(CellVerdict(cell.label, fingerprint,
                                               "missing",
                                               error="no golden on disk; "
                                                     "run with --update"))
            continue
        if entry["fingerprint"] != fingerprint:
            report.verdicts.append(CellVerdict(
                cell.label, fingerprint, "stale",
                error=f"golden was taken for fingerprint "
                      f"{entry['fingerprint'][:12]}, matrix now describes "
                      f"{fingerprint[:12]} (job description or SIM_VERSION "
                      f"changed); re-baseline with --update"))
            continue
        drift = classify_drift(entry["result"], fresh)
        if drift:
            report.verdicts.append(CellVerdict(
                cell.label, fingerprint, "drift",
                lanes=[lane for lane in DRIFT_LANES if lane in drift],
                diffs=drift))
        else:
            report.verdicts.append(CellVerdict(cell.label, fingerprint,
                                               "ok"))
    report.elapsed = time.perf_counter() - started
    return report


__all__ = ["GoldenCell", "GoldenError", "GoldenReport", "GoldenStore",
           "CellVerdict", "DEFAULT_GOLDEN_ROOT", "DRIFT_LANES",
           "canonical_json", "classify_drift", "diff_paths",
           "golden_matrix", "canonical_result", "result_digest",
           "split_lanes", "verify_goldens"]

# ResultCache is intentionally imported (and unused) nowhere: the absence
# of a cache in run_batch above is the contract.  Keep the import out.
del ResultCache
