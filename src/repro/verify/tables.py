"""Golden tables: the committed, byte-exact E-driver outputs.

The golden *result* store (:mod:`repro.verify.golden`) pins individual
simulation cells; this module pins the other end of the pipeline — the
rendered CSV of every experiment table at a fixed tiny scale
(``goldens/tables/*.csv``).  The design-layer refactor (and any future
driver change) must reproduce them byte for byte; the regression test
(``tests/test_table_goldens.py``) and ``repro-verify`` both compare
against the committed files.

Regenerate after an *intentional* table change::

    PYTHONPATH=src python -m repro.verify.tables --update

and commit the diff — the review of that diff is the drift gate.
"""

from __future__ import annotations

import sys
from pathlib import Path

from ..harness.experiments import (EXPERIMENT_DESIGNS, EXPERIMENTS,
                                   ExperimentContext, e12_benchmark_table,
                                   e12_config_table, plan_experiments)

#: Where the committed table goldens live.
DEFAULT_TABLE_ROOT = Path("goldens") / "tables"

#: The pinned environment: tiny grids, default seed/config, serial.
TABLE_SCALE = 0.02


def golden_context() -> ExperimentContext:
    """The exact context the table goldens are defined against."""
    return ExperimentContext(scale=TABLE_SCALE, jobs=1)


def build_tables(ctx: ExperimentContext | None = None) -> dict[str, str]:
    """Render every experiment table, keyed by golden file stem.

    All designs are planned as one deduplicated batch first, so the full
    matrix simulates each unique job exactly once.
    """
    ctx = ctx if ctx is not None else golden_context()
    plan_experiments(ctx, list(EXPERIMENT_DESIGNS))
    tables = {exp_id: driver(ctx).to_csv() + "\n"
              for exp_id, driver in EXPERIMENTS.items()}
    tables["e12a"] = e12_config_table(ctx).to_csv() + "\n"
    tables["e12b"] = e12_benchmark_table(ctx).to_csv() + "\n"
    return tables


def verify_tables(root: str | Path = DEFAULT_TABLE_ROOT,
                  tables: dict[str, str] | None = None) -> list[str]:
    """Compare freshly built tables against the committed goldens.

    Returns a list of human-readable mismatch descriptions (empty =
    clean): changed content, missing golden files, and stale goldens
    with no matching experiment are all reported.
    """
    root = Path(root)
    tables = tables if tables is not None else build_tables()
    problems: list[str] = []
    for stem, text in sorted(tables.items()):
        path = root / f"{stem}.csv"
        if not path.is_file():
            problems.append(f"{stem}: golden file missing ({path}); "
                            f"run -m repro.verify.tables --update")
            continue
        if path.read_text() != text:
            problems.append(f"{stem}: table differs from {path} "
                            f"(byte-identical contract broken)")
    for path in sorted(root.glob("*.csv")):
        if path.stem not in tables:
            problems.append(f"{path.stem}: stale golden {path} has no "
                            f"matching experiment")
    return problems


def update_tables(root: str | Path = DEFAULT_TABLE_ROOT) -> int:
    """(Re)write every table golden; returns the number written."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    tables = build_tables()
    for stem, text in sorted(tables.items()):
        (root / f"{stem}.csv").write_text(text)
    for path in sorted(root.glob("*.csv")):
        if path.stem not in tables:
            path.unlink()
    return len(tables)


def main(argv=None) -> int:   # pragma: no cover - thin CLI shim
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv == ["--update"]:
        written = update_tables()
        print(f"[table goldens: {written} file(s) -> {DEFAULT_TABLE_ROOT}/]")
        return 0
    if argv:
        print("usage: python -m repro.verify.tables [--update]",
              file=sys.stderr)
        return 2
    problems = verify_tables()
    for problem in problems:
        print(f"MISMATCH {problem}")
    print(f"[table goldens: {len(problems)} problem(s)]")
    return 1 if problems else 0


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
