"""Backend-parity sweep: the object core vs the vector core, bitwise.

The vector backend (:mod:`repro.sim.vector`) re-implements the simulator's
hot cycle loop in array form under a hard contract: for every supported
configuration it must produce a :class:`~repro.sim.stats.RunResult`
identical to the object reference core — statistics, windowed timeline and
telemetry alike.  This module is the layer of ``repro-verify`` that
enforces the contract.

The sweep re-runs the pinned golden matrix (restricted to the cells the
vector core supports) once per backend, cache-bypassing, and diffs the two
result renderings with the same bitwise lane classifier the golden gate
uses.  Any leaf difference — a counter, a timeline window, a telemetry
event — fails the sweep.

Relationship to the other layers:

* **golden** pins each cell against a *stored* baseline (catches drift
  over time);
* **backend** pins the two cores against *each other* (catches the vector
  core diverging from the reference, whatever the baseline says);
* the fuzzer's ``backend`` invariant extends the same check to randomly
  generated kernels and configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from ..harness.engine import run_batch
from ..harness.jobs import SimJob
from ..sim.vector import vector_supported
from .golden import (DRIFT_LANES, GoldenCell, GoldenError, canonical_result,
                     classify_drift, golden_matrix)


def parity_matrix(tier: str = "smoke") -> list[GoldenCell]:
    """The golden matrix restricted to vector-capable cells.

    Cells using ``two-level``/``swl`` warp schedulers stay object-only
    (see :data:`repro.sim.vector.VECTOR_WARP_SCHEDULERS`) and are
    excluded; everything else — every CTA policy, both hardware classes,
    the telemetry riders — is swept.
    """
    return [cell for cell in golden_matrix(tier)
            if vector_supported(cell.job.warp)]


@dataclass
class ParityVerdict:
    """What the sweep concluded about one cell.

    ``status``: ``ok`` | ``diff`` (the cores disagree) | ``error``
    (one of the runs itself failed).
    """

    label: str
    fingerprint: str
    status: str
    lanes: list[str] = field(default_factory=list)
    diffs: dict[str, list[tuple[str, Any, Any]]] = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_record(self) -> dict[str, Any]:
        """JSONL triage-artifact rendering (see repro.verify.artifacts)."""
        record: dict[str, Any] = {
            "kind": "backend",
            "label": self.label,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "lanes": list(self.lanes),
        }
        if self.error:
            record["error"] = self.error
        if self.diffs:
            record["diffs"] = {
                lane: [{"path": path, "object": a, "vector": b}
                       for path, a, b in entries[:20]]
                for lane, entries in self.diffs.items()
            }
        return record


@dataclass
class ParityReport:
    """Outcome of one backend-parity sweep."""

    tier: str
    verdicts: list[ParityVerdict] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    def count(self, status: str) -> int:
        return sum(1 for v in self.verdicts if v.status == status)

    def failures(self) -> list[ParityVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def summary_line(self) -> str:
        parts = [f"{self.count('ok')} ok"]
        for status in ("diff", "error"):
            if self.count(status):
                parts.append(f"{self.count(status)} {status}")
        return (f"backend[{self.tier}]: {len(self.verdicts)} cell(s), "
                + ", ".join(parts) + f" in {self.elapsed:.1f}s")


def verify_backends(cells: Sequence[GoldenCell], *, workers: int = 1,
                    progress: Callable[[int, int], None] | None = None,
                    ) -> ParityReport:
    """Run every cell on both backends and diff the results bitwise.

    Both batches bypass the persistent result cache — the sweep exists to
    compare two *executions*, and the cache would collapse them into one
    (``backend`` is deliberately not fingerprint-relevant).
    """
    import time
    started = time.perf_counter()
    labels = [cell.label for cell in cells]
    if len(labels) != len(set(labels)):
        raise GoldenError("duplicate labels in the parity matrix")
    for cell in cells:
        if not vector_supported(cell.job.warp):
            raise GoldenError(
                f"cell {cell.label!r} uses warp {cell.job.warp!r}, which "
                "the vector backend does not support; build the sweep "
                "with parity_matrix()")

    report = ParityReport(tier="parity")
    object_batch = run_batch(
        [replace(cell.job, backend="object") for cell in cells],
        workers=workers, cache=None, progress=progress)
    vector_batch = run_batch(
        [replace(cell.job, backend="vector") for cell in cells],
        workers=workers, cache=None, progress=progress)
    for cell, obj, vec in zip(cells, object_batch.outcomes,
                              vector_batch.outcomes):
        fingerprint = cell.job.fingerprint()
        errors = []
        if obj.result is None:
            errors.append(f"object: {obj.status}: {obj.error}")
        if vec.result is None:
            errors.append(f"vector: {vec.status}: {vec.error}")
        if errors:
            report.verdicts.append(ParityVerdict(
                cell.label, fingerprint, "error",
                error="; ".join(errors)))
            continue
        drift = classify_drift(canonical_result(obj.result.to_dict()),
                               canonical_result(vec.result.to_dict()))
        if drift:
            report.verdicts.append(ParityVerdict(
                cell.label, fingerprint, "diff",
                lanes=[lane for lane in DRIFT_LANES if lane in drift],
                diffs=drift))
        else:
            report.verdicts.append(ParityVerdict(cell.label, fingerprint,
                                                 "ok"))
    report.elapsed = time.perf_counter() - started
    return report


__all__ = ["ParityReport", "ParityVerdict", "parity_matrix",
           "verify_backends"]
