"""``repro-verify`` — the correctness gate for the simulator.

Five subcommands, one per verification layer plus a combined gate:

``repro-verify golden``
    Re-run the pinned golden matrix (cache-bypassing) and diff every
    cell bitwise against ``goldens/<tier>/``.  ``--update`` re-baselines
    after an intentional model change.
``repro-verify backend``
    Run the vector-capable golden cells on both simulator backends
    (object and vector) and diff the two results bitwise — the parity
    contract of :mod:`repro.sim.vector`.
``repro-verify refmodel``
    Cross-check the tuned simulator against the unoptimized differential
    reference model, window-by-window, over the pinned cross-check suite.
``repro-verify fuzz``
    Run N seeded metamorphic/property fuzz cases; failures are shrunk to
    minimal cases.
``repro-verify all``
    All four layers; the exit code is the OR of their verdicts.

Exit codes: 0 — everything verified; 1 — at least one drift, divergence
or invariant violation (details on stdout, JSONL artifact via
``--report``/``--report-dir``); 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence

from .artifacts import DEFAULT_REPORT_DIR, write_failure_artifact
from .backends import ParityReport, parity_matrix, verify_backends
from .fuzzer import FuzzReport, run_fuzz
from .golden import (DEFAULT_GOLDEN_ROOT, GoldenReport, GoldenStore,
                     golden_matrix, verify_goldens)
from .refmodel import (DEFAULT_WINDOW, CrossCheckResult, cross_check,
                       crosscheck_matrix)

#: Default master seed for fuzz campaigns (the paper's publication date,
#: like the harness' DEFAULT_SEED).
DEFAULT_FUZZ_SEED = 20140219
DEFAULT_FUZZ_CASES = 100


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Correctness gate: golden-result regression store, "
                    "differential reference model, metamorphic fuzzing.")
    sub = parser.add_subparsers(dest="command", required=True)

    golden = sub.add_parser(
        "golden", help="re-run the golden matrix and diff bitwise")
    golden.add_argument("--tier", choices=("smoke", "full"),
                        default="smoke",
                        help="which pinned matrix to verify "
                             "(default: smoke)")
    golden.add_argument("--store", metavar="DIR", default=None,
                        help="golden store root (default: "
                             "<repo>/goldens/<tier>)")
    golden.add_argument("--update", action="store_true",
                        help="re-baseline: overwrite every golden with "
                             "the fresh result instead of diffing")
    golden.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the matrix re-run")
    golden.add_argument("--report", metavar="FILE", default=None,
                        help="write failing cells as a JSONL artifact")

    backend = sub.add_parser(
        "backend", help="run vector-capable cells on both simulator "
                        "backends and diff bitwise")
    backend.add_argument("--tier", choices=("smoke", "full"),
                         default="smoke",
                         help="which pinned matrix to sweep "
                              "(default: smoke)")
    backend.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                         help="worker processes for the sweep")
    backend.add_argument("--report", metavar="FILE", default=None,
                         help="write disagreeing cells as a JSONL artifact")

    refmodel = sub.add_parser(
        "refmodel", help="cross-check the tuned simulator against the "
                         "reference model")
    refmodel.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                          metavar="CYCLES",
                          help="comparison window size (default: "
                               f"{DEFAULT_WINDOW})")
    refmodel.add_argument("--report", metavar="FILE", default=None,
                          help="write divergences as a JSONL artifact")

    fuzz = sub.add_parser(
        "fuzz", help="run seeded metamorphic/property fuzz cases")
    fuzz.add_argument("--seed", type=int, default=DEFAULT_FUZZ_SEED,
                      help=f"campaign master seed (default: "
                           f"{DEFAULT_FUZZ_SEED})")
    fuzz.add_argument("--cases", type=int, default=DEFAULT_FUZZ_CASES,
                      metavar="N",
                      help=f"number of generated cases (default: "
                           f"{DEFAULT_FUZZ_CASES})")
    fuzz.add_argument("--no-shrink", dest="shrink", action="store_false",
                      help="report failing cases unshrunk (faster triage "
                           "turnaround)")
    fuzz.add_argument("--report", metavar="FILE", default=None,
                      help="write shrunk failures as a JSONL artifact")

    combined = sub.add_parser(
        "all", help="run every layer; exit non-zero if any fails")
    combined.add_argument("--tier", choices=("smoke", "full"),
                          default="smoke")
    combined.add_argument("--store", metavar="DIR", default=None)
    combined.add_argument("--jobs", "-j", type=int, default=1, metavar="N")
    combined.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                          metavar="CYCLES")
    combined.add_argument("--seed", type=int, default=DEFAULT_FUZZ_SEED)
    combined.add_argument("--cases", type=int, default=DEFAULT_FUZZ_CASES,
                          metavar="N")
    combined.add_argument("--report-dir", metavar="DIR",
                          default=str(DEFAULT_REPORT_DIR),
                          help="directory for per-layer JSONL artifacts "
                               f"(default: {DEFAULT_REPORT_DIR})")
    return parser.parse_args(argv)


# --------------------------------------------------------------------------- #
# layers
# --------------------------------------------------------------------------- #

def _store_for(tier: str, override: str | None) -> GoldenStore:
    root = Path(override) if override else DEFAULT_GOLDEN_ROOT / tier
    return GoldenStore(root)


def _progress(done: int, total: int) -> None:
    print(f"\r  {done}/{total}", end="", file=sys.stderr, flush=True)
    if done == total:
        print(file=sys.stderr)


def _run_golden(tier: str, store_path: str | None, *, update: bool,
                jobs: int, report_path: str | None
                ) -> tuple[GoldenReport, list[dict[str, Any]]]:
    cells = golden_matrix(tier)
    store = _store_for(tier, store_path)
    print(f"golden: verifying {len(cells)} cell(s) against {store.root} "
          f"(cache bypassed)")
    report = verify_goldens(cells, store, update=update, workers=jobs,
                            progress=_progress)
    records = [v.to_record() for v in report.failures()]
    print(report.summary_line())
    for verdict in report.failures():
        lanes = ",".join(verdict.lanes) or "-"
        detail = verdict.error or ""
        for lane, entries in verdict.diffs.items():
            head = "; ".join(f"{p}: {a!r} -> {b!r}"
                             for p, a, b in entries[:3])
            more = (f" (+{len(entries) - 3} more)"
                    if len(entries) > 3 else "")
            detail += f"\n      [{lane}] {head}{more}"
        print(f"  DRIFT {verdict.label} [{verdict.status}; lanes: {lanes}]"
              f" {detail}")
    if report_path and records:
        n = write_failure_artifact(
            report_path, records, command="repro-verify golden",
            context={"tier": tier, "store": str(store.root)})
        print(f"  wrote {n} failure record(s) to {report_path}")
    return report, records


def _run_backend(tier: str, *, jobs: int, report_path: str | None
                 ) -> tuple[ParityReport, list[dict[str, Any]]]:
    cells = parity_matrix(tier)
    print(f"backend: {len(cells)} vector-capable cell(s), object vs "
          "vector, bitwise (cache bypassed)")
    report = verify_backends(cells, workers=jobs, progress=_progress)
    records = [v.to_record() for v in report.failures()]
    print(report.summary_line())
    for verdict in report.failures():
        lanes = ",".join(verdict.lanes) or "-"
        detail = verdict.error or ""
        for lane, entries in verdict.diffs.items():
            head = "; ".join(f"{p}: {a!r} != {b!r}"
                             for p, a, b in entries[:3])
            more = (f" (+{len(entries) - 3} more)"
                    if len(entries) > 3 else "")
            detail += f"\n      [{lane}] {head}{more}"
        print(f"  PARITY {verdict.label} [{verdict.status}; lanes: {lanes}]"
              f" {detail}")
    if report_path and records:
        n = write_failure_artifact(
            report_path, records, command="repro-verify backend",
            context={"tier": tier})
        print(f"  wrote {n} failure record(s) to {report_path}")
    return report, records


def _run_refmodel(window: int, report_path: str | None
                  ) -> tuple[list[CrossCheckResult], list[dict[str, Any]]]:
    jobs = crosscheck_matrix()
    print(f"refmodel: cross-checking {len(jobs)} run(s), "
          f"window={window} cycles")
    results = []
    for i, job in enumerate(jobs):
        result = cross_check(job, window=window)
        results.append(result)
        status = "DIVERGED" if result.diverged else "ok"
        print(f"  [{i + 1}/{len(jobs)}] {result.label}: {status}")
        if result.diverged:
            print("    " + result.summary().replace("\n", "\n    "))
    diverged = [r for r in results if r.diverged]
    records = [r.to_record() for r in diverged]
    print(f"refmodel: {len(results) - len(diverged)} ok, "
          f"{len(diverged)} diverged")
    if report_path and records:
        n = write_failure_artifact(
            report_path, records, command="repro-verify refmodel",
            context={"window": window})
        print(f"  wrote {n} failure record(s) to {report_path}")
    return results, records


def _run_fuzz(seed: int, cases: int, *, shrink: bool,
              report_path: str | None
              ) -> tuple[FuzzReport, list[dict[str, Any]]]:
    print(f"fuzz: {cases} case(s), master seed {seed}")
    report = run_fuzz(seed, cases, do_shrink=shrink, progress=_progress)
    print(report.summary_line())
    records = [f.to_record() for f in report.failures]
    for failure in report.failures:
        print(f"  VIOLATION [{failure.invariant}] seed={failure.case.seed}")
        print(f"    {failure.detail}")
        print(f"    shrunk: {failure.shrunk}")
    if report_path and records:
        n = write_failure_artifact(
            report_path, records, command="repro-verify fuzz",
            context={"seed": seed, "cases": cases})
        print(f"  wrote {n} failure record(s) to {report_path}")
    return report, records


# --------------------------------------------------------------------------- #

def main(argv: Sequence[str] | None = None) -> int:
    args = _parse_args(argv)
    if args.command == "golden":
        report, _ = _run_golden(args.tier, args.store, update=args.update,
                                jobs=args.jobs, report_path=args.report)
        return 0 if report.ok else 1
    if args.command == "backend":
        report, _ = _run_backend(args.tier, jobs=args.jobs,
                                 report_path=args.report)
        return 0 if report.ok else 1
    if args.command == "refmodel":
        if args.window < 1:
            print("error: --window must be >= 1", file=sys.stderr)
            return 2
        results, _ = _run_refmodel(args.window, args.report)
        return 0 if not any(r.diverged for r in results) else 1
    if args.command == "fuzz":
        if args.cases < 1:
            print("error: --cases must be >= 1", file=sys.stderr)
            return 2
        report, _ = _run_fuzz(args.seed, args.cases, shrink=args.shrink,
                              report_path=args.report)
        return 0 if report.ok else 1

    # all: run every layer even after a failure — one invocation, full
    # triage picture, artifacts for each failing layer.
    if args.cases < 1 or args.window < 1:
        print("error: --cases and --window must be >= 1", file=sys.stderr)
        return 2
    report_dir = Path(args.report_dir)
    golden_report, golden_records = _run_golden(
        args.tier, args.store, update=False, jobs=args.jobs,
        report_path=str(report_dir / "golden-failures.jsonl"))
    print()
    parity_report, parity_records = _run_backend(
        args.tier, jobs=args.jobs,
        report_path=str(report_dir / "backend-failures.jsonl"))
    print()
    crosschecks, refmodel_records = _run_refmodel(
        args.window, str(report_dir / "refmodel-failures.jsonl"))
    print()
    fuzz_report, fuzz_records = _run_fuzz(
        args.seed, args.cases, shrink=True,
        report_path=str(report_dir / "fuzz-failures.jsonl"))
    print()
    all_records = (golden_records + parity_records + refmodel_records
                   + fuzz_records)
    if all_records:
        # A chrome://tracing overlay of every failure; refmodel events
        # land at their first divergent cycle (see telemetry.drift_lane).
        from ..telemetry import merge_chrome_traces
        trace_path = report_dir / "drift-lane.trace"
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_text(json.dumps(
            merge_chrome_traces([], drift_records=all_records)),
            encoding="utf-8")
        print(f"drift lane trace: {trace_path}")
    verdicts = {
        "golden": golden_report.ok,
        "backend": parity_report.ok,
        "refmodel": not any(r.diverged for r in crosschecks),
        "fuzz": fuzz_report.ok,
    }
    line = ", ".join(f"{layer}: {'ok' if ok else 'FAIL'}"
                     for layer, ok in verdicts.items())
    print(f"verify: {line}")
    return 0 if all(verdicts.values()) else 1


if __name__ == "__main__":
    sys.exit(main())
