"""Metamorphic + property fuzzer for the simulator.

:func:`run_fuzz` generates hundreds of random-but-valid (kernel, policy,
warp scheduler, config) cases — deterministically from one master seed —
and asserts semantic *invariants* on each: properties that must hold for
every simulation regardless of the numbers it produces.  A violated
invariant is shrunk to a minimal failing case and reported with a repro
snippet; the CI artifact rendering lives in :mod:`repro.verify.artifacts`.

Invariants (:data:`INVARIANTS`):

``determinism``
    Running the identical case twice yields bitwise-identical results
    (the contract the result cache, the engine and the goldens rely on).
    Checked on both simulator backends (vector when the case's warp
    scheduler supports it).
``rename``
    Renaming the kernel changes nothing but the name: no scheduling or
    memory decision may key on the kernel's *name*.  (Exact for fuzz
    kernels, whose builders ignore the name; suite kernels salt their
    workload RNG on it, which is why this lives on generated kernels.)
``relabel``
    Re-mapping which CTA id receives which (uniform) program is a no-op:
    programs must be pure functions of ``(cta_id, warp_idx)`` with no
    shared mutable generator state across builder calls, and nothing may
    key on the id mapping itself.  Checked on uniform cases only — for
    id-dependent address streams a relabeling legitimately changes the
    memory behaviour.
``telemetry``
    A run observed with a timeline window and a trace produces the exact
    same statistics as an unobserved run (the telemetry determinism
    contract, fuzzed instead of spot-checked).
``sanitize``
    An in-flight-sanitized run is bitwise-identical to an unsanitized one
    (the sanitizer reads state, never perturbs it).
``validity``
    :func:`repro.harness.validate.validate_run` conservation laws hold,
    per-kernel cycle ordering is sane (launch <= first dispatch <= finish
    <= total cycles), and the telemetry timeline is monotone (strictly
    increasing window boundaries, cumulative instruction counts never
    exceeding the final total).
``refmodel``
    For cases whose warp scheduler the differential reference model
    covers exactly (:data:`~repro.verify.refmodel.REF_SUPPORTED`), the
    tuned and reference models agree window-by-window (see
    :mod:`repro.verify.refmodel`).
``design``
    A design built from the case's (warp, policy) compiles to the same
    labels and job fingerprints twice in a row, and — via the TOML
    serializer — survives a serialize → parse → compile round trip with
    identical fingerprints (the determinism contract campaigns and the
    ``--design`` CLI path lean on).  Pure compilation: nothing simulates.
``backend``
    For cases whose warp scheduler the vector backend supports
    (:data:`~repro.sim.vector.VECTOR_WARP_SCHEDULERS`), the object and
    vector cores produce bitwise-identical results — statistics,
    windowed timeline and trace alike (the contract
    :mod:`repro.verify.backends` sweeps over the pinned matrix,
    extended here to generated kernels).

Determinism contract of the fuzzer itself: ``run_fuzz(seed, n)`` draws
the same ``n`` cases for the same ``seed`` on every invocation, so a CI
failure is reproducible locally from the two integers in the log.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable

import numpy as np

from ..harness.jobs import build_policy
from ..harness.runner import simulate
from ..harness.validate import RunValidationError, validate_run
from ..sim.config import GPUConfig
from ..sim.isa import Instruction, Op
from ..sim.kernel import Kernel
from ..sim.stats import RunResult
from ..sim.vector import vector_supported
from ..telemetry.hub import TelemetryHub
from .golden import diff_paths
from .refmodel import REF_SUPPORTED, compare_runs, reference_run

#: Per-run wall-clock backstop (seconds); generated cases are tiny, so a
#: run hitting this is itself a bug worth surfacing.
CASE_WALL_TIMEOUT = 120.0

#: Timeline window used by the telemetry/validity/refmodel invariants.
CASE_WINDOW = 100


class FuzzError(RuntimeError):
    """The fuzzer itself was misused (bad case bounds, bad invariant)."""


# --------------------------------------------------------------------------- #
# cases
# --------------------------------------------------------------------------- #

#: Policy palette for generated cases (single-kernel CTA schedulers; CKE
#: policies need multi-kernel workloads and are covered by the goldens).
POLICY_PALETTE: tuple[tuple, ...] = (
    ("rr",), ("static", 2), ("lcs",), ("bcs", 2, None),
    ("dyncta",), ("depth-first",), ("lcs+bcs", 2, "tail", None),
)

#: Warp-scheduler palette (every registered policy name).
WARP_PALETTE: tuple[str, ...] = ("lrr", "gto", "baws", "two-level", "swl")


@dataclass(frozen=True)
class FuzzCase:
    """One generated simulation description, all-scalar and shrinkable.

    Unlike :func:`repro.workloads.fuzz.random_kernel` (which draws its
    dimensions internally from the seed), every dimension here is an
    explicit field — that is what makes shrinking possible: the shrinker
    lowers fields directly and rebuilds the kernel, instead of hunting
    for a different seed with a smaller draw.
    """

    seed: int
    num_ctas: int = 4
    warps_per_cta: int = 2
    num_segments: int = 2
    segment_length: int = 4
    line_space: int = 256
    barriers: bool = False
    uniform: bool = False
    regs_per_thread: int = 0
    warp: str = "gto"
    policy: tuple = ("rr",)
    num_sms: int = 2
    issue_width: int = 2
    ldst_queue_depth: int = 8
    l1_mshr_entries: int = 8

    def __post_init__(self) -> None:
        for name in ("num_ctas", "warps_per_cta", "num_segments",
                     "segment_length", "line_space", "num_sms",
                     "issue_width", "ldst_queue_depth", "l1_mshr_entries"):
            if getattr(self, name) < 1:
                raise FuzzError(f"FuzzCase.{name} must be >= 1")
        if self.warp not in WARP_PALETTE:
            raise FuzzError(f"unknown warp {self.warp!r}")
        object.__setattr__(self, "policy", tuple(self.policy))

    # ------------------------------------------------------------------ #
    @classmethod
    def generate(cls, seed: int) -> "FuzzCase":
        """Draw one case, deterministically in ``seed``."""
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0xCA5E]))
        return cls(
            seed=seed,
            num_ctas=int(rng.integers(1, 9)),
            warps_per_cta=int(rng.integers(1, 5)),
            num_segments=int(rng.integers(1, 5)),
            segment_length=int(rng.integers(1, 9)),
            line_space=int(rng.choice([64, 256, 1024])),
            barriers=bool(rng.integers(0, 2)),
            uniform=bool(rng.integers(0, 2)),
            regs_per_thread=int(rng.integers(0, 33)),
            warp=str(rng.choice(WARP_PALETTE)),
            policy=POLICY_PALETTE[int(rng.integers(0, len(POLICY_PALETTE)))],
            num_sms=int(rng.integers(1, 3)),
            issue_width=int(rng.integers(1, 3)),
            ldst_queue_depth=int(rng.choice([1, 2, 4, 8])),
            l1_mshr_entries=int(rng.choice([2, 4, 8])),
        )

    # ------------------------------------------------------------------ #
    def config(self) -> GPUConfig:
        return GPUConfig.small(
            num_sms=self.num_sms,
            issue_width=self.issue_width,
            ldst_queue_depth=self.ldst_queue_depth,
            l1_mshr_entries=self.l1_mshr_entries,
            # Keep merge capacity within the (possibly tiny) MSHR file.
            l1_mshr_max_merge=min(4, self.l1_mshr_entries),
        )

    def build_kernel(self, *, name: str | None = None,
                     relabel: Callable[[int], int] | None = None) -> Kernel:
        """A fresh kernel for this case.

        ``relabel`` re-maps which CTA id receives which program stream
        (the ``relabel`` invariant's transformation); programs stay pure
        functions of the *mapped* id.
        """
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 1]))
        with_barriers = self.barriers and self.warps_per_cta > 1
        shape: list[list[tuple[str, int, int]]] = []
        for _ in range(self.num_segments):
            length = int(rng.integers(1, self.segment_length + 1))
            segment = []
            for _ in range(length):
                kind = str(rng.choice(
                    ["alu", "alu", "shared", "load", "load", "store"]))
                latency = int(rng.integers(1, 16))
                n_lines = int(rng.integers(1, 5))
                segment.append((kind, latency, n_lines))
            shape.append(segment)

        seed = self.seed
        uniform = self.uniform
        line_space = self.line_space

        def builder(cta_id: int, warp_idx: int) -> list[Instruction]:
            if relabel is not None:
                cta_id = relabel(cta_id)
            # Uniform cases share one address stream across CTAs, making
            # the id a pure label (see the `relabel` invariant).
            stream_id = 0 if uniform else cta_id
            local = np.random.default_rng(
                np.random.SeedSequence([seed, 2, stream_id, warp_idx]))
            program: list[Instruction] = []
            for segment in shape:
                for kind, latency, n_lines in segment:
                    if kind == "alu":
                        program.append(Instruction(Op.ALU, latency=latency))
                    elif kind == "shared":
                        program.append(
                            Instruction(Op.SHARED, latency=latency))
                    else:
                        lines = local.choice(line_space, size=n_lines,
                                             replace=False)
                        op = (Op.LD_GLOBAL if kind == "load"
                              else Op.ST_GLOBAL)
                        program.append(Instruction(
                            op, lines=tuple(int(x) for x in lines)))
                if with_barriers:
                    program.append(Instruction(Op.BARRIER))
            program.append(Instruction(Op.EXIT))
            return program

        return Kernel(name or f"fuzzcase-{self.seed}", self.num_ctas,
                      self.warps_per_cta, builder,
                      regs_per_thread=self.regs_per_thread, tags=("fuzz",))

    # ------------------------------------------------------------------ #
    def run(self, *, name: str | None = None,
            relabel: Callable[[int], int] | None = None,
            timeline_window: int | None = None, trace: bool = False,
            sanitize: bool = False, backend: str = "object") -> RunResult:
        """Execute this case once (fresh kernel, policy and hub)."""
        kernel = self.build_kernel(name=name, relabel=relabel)
        scheduler = build_policy(self.policy, [kernel])
        telemetry = None
        if timeline_window is not None or trace:
            telemetry = TelemetryHub(window=timeline_window, trace=trace)
        return simulate(kernel, config=self.config(),
                        warp_scheduler=self.warp, cta_scheduler=scheduler,
                        telemetry=telemetry, sanitize=sanitize,
                        wall_timeout=CASE_WALL_TIMEOUT, backend=backend)

    def repro_snippet(self, invariant: str) -> str:
        parts = ", ".join(f"{key}={value!r}"
                          for key, value in asdict(self).items())
        return (
            "from repro.verify.fuzzer import FuzzCase, check_invariant\n"
            f"case = FuzzCase({parts})\n"
            f"print(check_invariant(case, {invariant!r}))\n"
        )


# --------------------------------------------------------------------------- #
# invariants
# --------------------------------------------------------------------------- #

def _strip_names(result_dict: dict[str, Any]) -> dict[str, Any]:
    """Erase kernel-name keys so renamed runs compare structurally."""
    stripped = dict(result_dict)
    stripped["kernels"] = {
        f"<kernel-{i}>": {key: value for key, value in stats.items()
                          if key != "name"}
        for i, (_, stats) in enumerate(sorted(stripped["kernels"].items()))}
    meta = dict(stripped["meta"])
    meta["kernels"] = [f"<kernel-{i}>"
                       for i in range(len(meta.get("kernels", [])))]
    stripped["meta"] = meta
    return stripped


def _diff_detail(diffs: list[tuple[str, Any, Any]], what: str) -> str:
    head = diffs[:6]
    rendered = "; ".join(f"{path}: {a!r} != {b!r}" for path, a, b in head)
    more = f" (+{len(diffs) - len(head)} more)" if len(diffs) > len(head) \
        else ""
    return f"{what}: {len(diffs)} diff(s): {rendered}{more}"


def _check_determinism(case: FuzzCase) -> str | None:
    first = case.run(trace=True, timeline_window=CASE_WINDOW).to_dict()
    second = case.run(trace=True, timeline_window=CASE_WINDOW).to_dict()
    diffs = diff_paths(first, second)
    if diffs:
        return _diff_detail(diffs, "two identical runs differ")
    if vector_supported(case.warp):
        v_first = case.run(trace=True, timeline_window=CASE_WINDOW,
                           backend="vector").to_dict()
        v_second = case.run(trace=True, timeline_window=CASE_WINDOW,
                            backend="vector").to_dict()
        diffs = diff_paths(v_first, v_second)
        if diffs:
            return _diff_detail(diffs,
                                "two identical vector-backend runs differ")
    return None


def _check_backend(case: FuzzCase) -> str | None:
    """The vector core reproduces the object core bitwise (when it can).

    Runs carry the timeline and trace riders so all three drift lanes
    (stats, timeline, telemetry) are compared, exactly like the pinned
    ``repro-verify backend`` sweep but over generated cases.
    """
    if not vector_supported(case.warp):
        return None
    obj = case.run(trace=True, timeline_window=CASE_WINDOW).to_dict()
    vec = case.run(trace=True, timeline_window=CASE_WINDOW,
                   backend="vector").to_dict()
    diffs = diff_paths(obj, vec)
    if diffs:
        return _diff_detail(diffs, "object/vector backends disagree")
    return None


def _check_rename(case: FuzzCase) -> str | None:
    base = _strip_names(case.run().to_dict())
    renamed = _strip_names(case.run(name="renamed-kernel").to_dict())
    diffs = diff_paths(base, renamed)
    if diffs:
        return _diff_detail(diffs, "kernel rename changed results")
    return None


def _check_relabel(case: FuzzCase) -> str | None:
    if not case.uniform:
        return None   # id-dependent address streams: not an invariant
    n = case.num_ctas
    # A fixed, deterministic derangement-ish permutation (reversal).
    base = case.run().to_dict()
    relabeled = case.run(relabel=lambda cta_id: n - 1 - cta_id).to_dict()
    diffs = diff_paths(base, relabeled)
    if diffs:
        return _diff_detail(diffs, "CTA-id relabeling changed results")
    return None


def _check_telemetry(case: FuzzCase) -> str | None:
    bare = case.run().to_dict()
    observed = case.run(timeline_window=CASE_WINDOW, trace=True).to_dict()
    # The observed run legitimately carries the timeline and trace; the
    # *statistics* must be untouched.
    observed["meta"].pop("timeline", None)
    observed["meta"].pop("trace", None)
    diffs = diff_paths(bare, observed)
    if diffs:
        return _diff_detail(diffs, "telemetry perturbed the statistics")
    return None


def _check_sanitize(case: FuzzCase) -> str | None:
    plain = case.run(sanitize=False).to_dict()
    try:
        sanitized = case.run(sanitize=True).to_dict()
    except Exception as error:   # noqa: BLE001 - any violation is a finding
        return (f"sanitized run raised {type(error).__name__}: {error}")
    diffs = diff_paths(plain, sanitized)
    if diffs:
        return _diff_detail(diffs, "sanitizer perturbed the statistics")
    return None


def _check_validity(case: FuzzCase) -> str | None:
    result = case.run(timeline_window=CASE_WINDOW)
    try:
        validate_run(result)
    except RunValidationError as error:
        return f"validate_run: {error}"
    for name, stats in result.kernels.items():
        first = stats.first_dispatch_cycle
        finish = stats.finish_cycle
        if first is None or finish is None:
            return f"kernel {name!r}: missing dispatch/finish cycles"
        if not (stats.launch_cycle <= first <= finish <= result.cycles):
            return (f"kernel {name!r}: cycle ordering violated "
                    f"(launch={stats.launch_cycle}, first={first}, "
                    f"finish={finish}, total={result.cycles})")
    timeline = result.meta.get("timeline")
    if timeline is not None:
        cycles = timeline.cycles
        if any(b <= a for a, b in zip(cycles, cycles[1:])):
            return f"timeline boundaries not increasing: {cycles[:16]}"
        if cycles and cycles[-1] > result.cycles:
            return (f"timeline ran past the end of the run "
                    f"({cycles[-1]} > {result.cycles})")
        ipc = timeline.columns.get("ipc", [])
        issued = sum(v * w for v, w in zip(
            ipc, [cycles[0]] + [b - a for a, b in zip(cycles, cycles[1:])]))
        if issued > result.instructions + 1e-6 * max(result.instructions, 1):
            return (f"windowed IPC integrates to more instructions than "
                    f"issued ({issued:.1f} > {result.instructions})")
    return None


def _check_refmodel(case: FuzzCase) -> str | None:
    if case.warp not in REF_SUPPORTED:
        return None
    tuned = case.run(timeline_window=CASE_WINDOW)
    reference = reference_run(
        [case.build_kernel()], policy=case.policy, warp=case.warp,
        config=case.config(), timeline_window=CASE_WINDOW,
        wall_timeout=CASE_WALL_TIMEOUT)
    report = compare_runs(tuned, reference, window=CASE_WINDOW,
                          label=f"fuzzcase-{case.seed}")
    if report.diverged:
        where = (f"first divergent window #{report.first_window} "
                 f"(cycle {report.window_cycle})"
                 if report.first_window is not None else "final stats")
        return (f"tuned/reference divergence at {where}: "
                + _diff_detail(report.window_diffs or report.stat_diffs,
                               "diffs"))
    return None


#: name -> checker; a checker returns None (pass) or a failure detail.
def _check_design(case: FuzzCase) -> str | None:
    """Design compilation is deterministic and file-round-trip stable."""
    from ..design import Design, DesignEnv, Factor, parse_design, \
        serialize_design
    design = Design(f"fuzz-{case.seed}", factors=[
        Factor.crossed("bench", ("kmeans", "streaming")),
        Factor.crossed("warp", (case.warp,)),
        Factor.crossed("policy", (case.policy, ("rr",))),
    ])
    env_map = {"scale": 0.05, "seed": case.seed}
    env = DesignEnv(**env_map)
    first = [(cc.label, cc.job.fingerprint())
             for cc in design.compile(env)]
    second = [(cc.label, cc.job.fingerprint())
              for cc in design.compile(env)]
    if first != second:
        return (f"design compiled differently twice under one env: "
                f"{first} vs {second}")
    parsed, env_overrides = parse_design(
        serialize_design(design, env=env_map))
    third = [(cc.label, cc.job.fingerprint())
             for cc in parsed.compile(DesignEnv(**env_overrides))]
    if first != third:
        return (f"design file round trip changed the compiled jobs: "
                f"{first} vs {third}")
    return None


INVARIANTS: dict[str, Callable[[FuzzCase], str | None]] = {
    "determinism": _check_determinism,
    "rename": _check_rename,
    "relabel": _check_relabel,
    "telemetry": _check_telemetry,
    "sanitize": _check_sanitize,
    "validity": _check_validity,
    "refmodel": _check_refmodel,
    "backend": _check_backend,
    "design": _check_design,
}


def check_invariant(case: FuzzCase, invariant: str) -> str | None:
    """Run one named invariant; None means it held."""
    try:
        checker = INVARIANTS[invariant]
    except KeyError:
        raise FuzzError(f"unknown invariant {invariant!r}; "
                        f"available: {sorted(INVARIANTS)}") from None
    return checker(case)


def check_case(case: FuzzCase) -> dict[str, str]:
    """Run every invariant; returns {invariant: failure detail} (empty =
    all held).  An invariant that *crashes* is recorded as a failure too —
    a generated case must never take the simulator down."""
    failures: dict[str, str] = {}
    for name, checker in INVARIANTS.items():
        try:
            detail = checker(case)
        except Exception as error:   # noqa: BLE001 - crash == finding
            detail = f"invariant crashed: {type(error).__name__}: {error}"
        if detail is not None:
            failures[name] = detail
    return failures


# --------------------------------------------------------------------------- #
# shrinking
# --------------------------------------------------------------------------- #

#: Fields the shrinker lowers, in order, with their minimum values.
_SHRINK_FIELDS: tuple[tuple[str, int], ...] = (
    ("num_ctas", 1), ("warps_per_cta", 1), ("num_segments", 1),
    ("segment_length", 1), ("num_sms", 1), ("issue_width", 1),
    ("line_space", 16), ("l1_mshr_entries", 2), ("ldst_queue_depth", 1),
    ("regs_per_thread", 0),
)

#: Upper bound on predicate evaluations per shrink (each evaluation runs
#: the failing invariant, i.e. a handful of simulations).
SHRINK_BUDGET = 80


def shrink(case: FuzzCase, predicate: Callable[[FuzzCase], bool],
           *, budget: int = SHRINK_BUDGET) -> FuzzCase:
    """Greedy field-wise shrink: lower every field as far as the failure
    persists.  ``predicate(case)`` returns True while the case still
    fails.  Deterministic (no randomness) and bounded by ``budget``
    predicate calls."""
    calls = 0

    def still_fails(candidate: FuzzCase) -> bool:
        nonlocal calls
        if calls >= budget:
            return False
        calls += 1
        try:
            return bool(predicate(candidate))
        except Exception:   # noqa: BLE001 - a crashier candidate still fails
            return True

    current = case
    # Flip the booleans off first (smaller programs, simpler schedules).
    for flag in ("barriers", "uniform"):
        if getattr(current, flag):
            candidate = replace(current, **{flag: False})
            if still_fails(candidate):
                current = candidate
    changed = True
    while changed and calls < budget:
        changed = False
        for name, minimum in _SHRINK_FIELDS:
            value = getattr(current, name)
            while value > minimum and calls < budget:
                # Halve the distance to the minimum (classic bisection),
                # falling back to -1 steps near the floor.
                step = max((value - minimum) // 2, 1)
                candidate = replace(current, **{name: value - step})
                if still_fails(candidate):
                    current = candidate
                    value = getattr(current, name)
                    changed = True
                else:
                    break
    return current


# --------------------------------------------------------------------------- #
# the campaign
# --------------------------------------------------------------------------- #

@dataclass
class FuzzFailure:
    """One shrunk invariant violation."""

    invariant: str
    detail: str
    case: FuzzCase
    shrunk: FuzzCase

    def to_record(self) -> dict[str, Any]:
        """JSONL triage-artifact rendering (see repro.verify.artifacts)."""
        return {
            "kind": "fuzz",
            "invariant": self.invariant,
            "detail": self.detail,
            "seed": self.case.seed,
            "case": asdict(self.case),
            "shrunk": asdict(self.shrunk),
            "repro": self.shrunk.repro_snippet(self.invariant),
        }


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    master_seed: int
    cases: int = 0
    checks: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_line(self) -> str:
        status = ("all invariants held" if self.ok
                  else f"{len(self.failures)} invariant violation(s)")
        return (f"fuzz[seed={self.master_seed}]: {self.cases} case(s), "
                f"{self.checks} invariant check(s), {status} "
                f"in {self.elapsed:.1f}s")


def case_seeds(master_seed: int, n: int) -> list[int]:
    """The campaign's per-case seeds (deterministic in ``master_seed``)."""
    rng = np.random.default_rng(np.random.SeedSequence([master_seed]))
    return [int(s) for s in rng.integers(0, 2**31, size=n)]


def run_fuzz(master_seed: int, n: int, *,
             do_shrink: bool = True,
             progress: Callable[[int, int], None] | None = None
             ) -> FuzzReport:
    """Run ``n`` generated cases through every invariant.

    Same ``master_seed`` -> same cases, same order, same verdicts — a CI
    failure reproduces locally from the seed in the log.  Each failing
    (case, invariant) pair is shrunk to a minimal case before reporting.
    """
    if n < 1:
        raise FuzzError(f"need at least one case, got {n}")
    started = time.perf_counter()
    report = FuzzReport(master_seed=master_seed)
    for i, seed in enumerate(case_seeds(master_seed, n)):
        case = FuzzCase.generate(seed)
        failures = check_case(case)
        report.cases += 1
        report.checks += len(INVARIANTS)
        for invariant, detail in failures.items():
            shrunk = case
            if do_shrink:
                shrunk = shrink(
                    case,
                    lambda c, inv=invariant:
                        check_invariant(c, inv) is not None)
            report.failures.append(FuzzFailure(
                invariant=invariant, detail=detail, case=case,
                shrunk=shrunk))
        if progress is not None:
            progress(i + 1, n)
    report.elapsed = time.perf_counter() - started
    return report


__all__ = ["CASE_WALL_TIMEOUT", "CASE_WINDOW", "FuzzCase", "FuzzError",
           "FuzzFailure", "FuzzReport", "INVARIANTS", "POLICY_PALETTE",
           "WARP_PALETTE", "case_seeds", "check_case", "check_invariant",
           "run_fuzz", "shrink"]
