"""Wire protocol for the scheduler daemon: newline-delimited JSON.

One request or response per line (a *frame*), UTF-8, no length prefix —
the same torn-tail-tolerant shape as the campaign journal, so a frame
either parses whole or is rejected whole.  The daemon and the client
share these helpers; everything else about the service lives behind
them.

Requests carry an ``op`` and op-specific fields::

    {"op": "submit", "id": "ab12cd34ef56:3", "tenant": "alice",
     "job": {...SimJob.to_payload()...}}
    {"op": "status"}                       # healthz: counts + uptime
    {"op": "result", "id": "..."}          # terminal state + result
    {"op": "watch", "ids": ["...", ...]}   # stream terminal events
    {"op": "drain"}                        # administrative SIGTERM
    {"op": "gossip", "addr": ..., "index": ..., ...}   # peer heartbeat

In a federated fleet (:mod:`repro.service.cluster`) a ``submit`` may
additionally carry ``"route": {"via": ADDR, "index": N}`` — set by a
daemon forwarding the frame to the fingerprint's rendezvous owner, and
never set twice (one forwarding hop at most) — or ``"pin": true`` from a
client that wants *this* daemon to own the job regardless of routing.
``gossip`` frames are daemon-to-daemon heartbeats carrying the sender's
membership view, its non-terminal job announcements (the cluster
leases), its terminal states, and its open circuit-breaker fingerprints;
the response mirrors the same payload back so one exchange synchronises
both directions.

Responses echo ``op`` and carry ``ok`` plus op-specific fields; a
``submit`` response's ``state`` is one of the :data:`STATES` below (or
:data:`SHED`, which is not a job state — the job was never accepted).
``watch`` responses are a stream: zero or more ``{"event": "terminal",
...}`` frames followed by one ``{"ok": true, "done": true}`` frame.

Job ids are chosen by the *client* and are idempotency keys: submitting
the same id twice (a reconnect after a dropped socket, a re-run of
``repro-submit``) returns the job's current state instead of enqueueing
a duplicate.  ``repro-submit`` derives ids from the design digest and
cell index (:func:`job_id`), so two concurrent clients submitting the
same design converge on the same jobs.
"""

from __future__ import annotations

import json
from typing import Any

#: Protocol version, echoed in ``status`` responses.  Version 2 added
#: the ``gossip`` op and the ``route``/``pin`` submit fields.
PROTOCOL_VERSION = 2

#: Maximum accepted frame size in bytes (a malformed or malicious
#: client cannot balloon daemon memory with one endless line).
MAX_FRAME_BYTES = 1 << 20

#: Request operations the daemon understands.
OPS = ("submit", "status", "result", "watch", "drain", "gossip")

#: Job lifecycle states (journal-backed; see ``repro.service.daemon``).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"
STATES = (QUEUED, RUNNING, DONE, FAILED, QUARANTINED)

#: Terminal states: a job in one of these never changes again.
TERMINAL = (DONE, FAILED, QUARANTINED)

#: Not a job state: the submission was refused at admission and never
#: entered the queue (the response carries a ``reason``).
SHED = "shed"


class ProtocolError(ValueError):
    """A frame that does not parse, or parses to a non-request."""


def encode_frame(frame: dict[str, Any]) -> bytes:
    """One frame to its wire form (canonical JSON + newline)."""
    return (json.dumps(frame, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_frame(line: bytes) -> dict[str, Any]:
    """One wire line back to a frame; raises :class:`ProtocolError`.

    Unlike journal replay, a bad frame is *not* silently dropped — the
    peer is live and must be told (the daemon answers with an error
    response; the client raises to its caller).
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"unparseable frame: {error}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a JSON object, "
                            f"got {type(frame).__name__}")
    return frame


def error_response(op: str | None, message: str) -> dict[str, Any]:
    """The daemon's uniform bad-request answer (connection stays up)."""
    return {"ok": False, "op": op or "?", "error": message}


def job_id(digest: str, index: int) -> str:
    """The deterministic id ``repro-submit`` uses for one design cell.

    Digest-prefixed so ids from different designs can never collide,
    and stable across client restarts so resubmission is idempotent.
    """
    return f"{digest[:12]}:{index}"
