"""Supervised simulation service (ROADMAP item 3).

The one-shot batch engine promoted to an always-on scheduler daemon:
``repro-serve`` (:mod:`repro.service.daemon`) owns a journal-backed
persistent submission queue, admission control with load shedding
(:mod:`repro.service.admission`), a heartbeat-supervised worker pool
(:mod:`repro.service.supervisor` driving
:mod:`repro.service.worker` subprocesses through the engine's shared
dispatch core), a per-fingerprint circuit breaker for poison jobs, and
graceful drain on SIGTERM.  ``repro-submit``
(:mod:`repro.service.client`) compiles a design client-side and talks
newline-delimited JSON (:mod:`repro.service.protocol`) over a unix
socket or TCP.  See docs/ROBUSTNESS.md ("Service") for the supervision
tree, the overload ladder and the crash matrix.
"""

from .admission import (DEFAULT_BREAKER_THRESHOLD, DEFAULT_BURST,
                        DEFAULT_QUEUE_DEPTH, DEFAULT_RATE, CircuitBreaker,
                        FairShareQueue, TokenBucket)
from .client import ServiceClient, ServiceError
from .daemon import (DEFAULT_DRAIN_GRACE, DEFAULT_STATE_DIR, SOCKET_NAME,
                     JobRecord, JobTable, SchedulerDaemon)
from .protocol import (DONE, FAILED, MAX_FRAME_BYTES, PROTOCOL_VERSION,
                       QUARANTINED, QUEUED, RUNNING, SHED, STATES, TERMINAL,
                       ProtocolError, decode_frame, encode_frame,
                       error_response, job_id)
from .supervisor import DEFAULT_HB_TIMEOUT, Dispatch, Supervisor

__all__ = [
    "DEFAULT_BREAKER_THRESHOLD", "DEFAULT_BURST", "DEFAULT_DRAIN_GRACE",
    "DEFAULT_HB_TIMEOUT", "DEFAULT_QUEUE_DEPTH", "DEFAULT_RATE",
    "DEFAULT_STATE_DIR", "DONE", "FAILED", "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION", "QUARANTINED", "QUEUED", "RUNNING", "SHED",
    "SOCKET_NAME", "STATES", "TERMINAL", "CircuitBreaker", "Dispatch",
    "FairShareQueue", "JobRecord", "JobTable", "ProtocolError",
    "SchedulerDaemon", "ServiceClient", "ServiceError", "Supervisor",
    "TokenBucket", "decode_frame", "encode_frame", "error_response",
    "job_id",
]
