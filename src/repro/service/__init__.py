"""Supervised simulation service (ROADMAP item 3).

The one-shot batch engine promoted to an always-on scheduler daemon:
``repro-serve`` (:mod:`repro.service.daemon`) owns a journal-backed
persistent submission queue, admission control with load shedding
(:mod:`repro.service.admission`), a heartbeat-supervised worker pool
(:mod:`repro.service.supervisor` driving
:mod:`repro.service.worker` subprocesses through the engine's shared
dispatch core), a per-fingerprint circuit breaker (with half-open
probing) for poison jobs, and graceful drain on SIGTERM.
``repro-submit`` (:mod:`repro.service.client`) compiles a design
client-side and talks newline-delimited JSON
(:mod:`repro.service.protocol`) over a unix socket or TCP, failing over
across a ``--peers`` list.

Daemons federate (:mod:`repro.service.cluster`): gossip-based
membership with lease-rule failure detection, replicated job ownership
with rendezvous-hashed handoff from dead peers, quorum-gated admission
(the split-brain stance), and fleet-wide quarantine sync.
``repro-audit`` (:mod:`repro.service.audit`) folds every daemon's
journal into one offline exactly-once verdict.  See docs/ROBUSTNESS.md
("Service", "Clustered service") for the supervision tree, the overload
ladder, the membership protocol and the crash matrix.
"""

from .admission import (ADMIT_OK, ADMIT_PROBE, ADMIT_REFUSE,
                        DEFAULT_BREAKER_COOLDOWN, DEFAULT_BREAKER_THRESHOLD,
                        DEFAULT_BURST, DEFAULT_QUEUE_DEPTH, DEFAULT_RATE,
                        CircuitBreaker, FairShareQueue, TokenBucket)
from .audit import AuditReport, JobAudit, audit_state_dirs
from .client import ServiceClient, ServiceError
from .cluster import (DEFAULT_GOSSIP_INTERVAL, DEFAULT_PEER_TTL, PEER_DEAD,
                      PEER_SUSPECT, PEER_UNKNOWN, PEER_UP, ClusterManager,
                      PeerState, parse_address, rendezvous_owner)
from .daemon import (DEFAULT_DRAIN_GRACE, DEFAULT_STATE_DIR, SOCKET_NAME,
                     JobRecord, JobTable, SchedulerDaemon)
from .protocol import (DONE, FAILED, MAX_FRAME_BYTES, PROTOCOL_VERSION,
                       QUARANTINED, QUEUED, RUNNING, SHED, STATES, TERMINAL,
                       ProtocolError, decode_frame, encode_frame,
                       error_response, job_id)
from .supervisor import DEFAULT_HB_TIMEOUT, Dispatch, Supervisor

__all__ = [
    "ADMIT_OK", "ADMIT_PROBE", "ADMIT_REFUSE", "DEFAULT_BREAKER_COOLDOWN",
    "DEFAULT_BREAKER_THRESHOLD", "DEFAULT_BURST", "DEFAULT_DRAIN_GRACE",
    "DEFAULT_GOSSIP_INTERVAL", "DEFAULT_HB_TIMEOUT", "DEFAULT_PEER_TTL",
    "DEFAULT_QUEUE_DEPTH", "DEFAULT_RATE", "DEFAULT_STATE_DIR", "DONE",
    "FAILED", "MAX_FRAME_BYTES", "PEER_DEAD", "PEER_SUSPECT",
    "PEER_UNKNOWN", "PEER_UP", "PROTOCOL_VERSION", "QUARANTINED", "QUEUED",
    "RUNNING", "SHED", "SOCKET_NAME", "STATES", "TERMINAL", "AuditReport",
    "CircuitBreaker", "ClusterManager", "Dispatch", "FairShareQueue",
    "JobAudit", "JobRecord", "JobTable", "PeerState", "ProtocolError",
    "SchedulerDaemon", "ServiceClient", "ServiceError", "Supervisor",
    "TokenBucket", "audit_state_dirs", "decode_frame", "encode_frame",
    "error_response", "job_id", "parse_address", "rendezvous_owner",
]
