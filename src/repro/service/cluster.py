"""Coordinator-less federation of scheduler daemons.

N ``repro-serve`` daemons — each keeping its own supervision tree,
admission ladder and write-ahead journal — peer over the existing NDJSON
protocol (a ``gossip`` op) to form one fleet with no coordinator, no
leader election and no shared database.  Three mechanisms, all built on
machinery that already exists elsewhere in the tree:

**Membership.**  Every ``gossip_interval`` seconds each daemon probes
every peer with a gossip frame; the response synchronises both
directions in one exchange.  Peer liveness is the campaign lease rule
verbatim (:func:`repro.design.leases.lease_alive`): a peer whose newest
contact is older than its TTL is *suspected*, older than twice its TTL
is *dead*.  TTLs are deterministically jittered per (observer, peer)
pair — the same sha256 trick as campaign worker leases — so N observers
never declare a peer dead in the same instant.  Transitions are
journaled as ``peer.up`` / ``peer.suspect`` / ``peer.dead`` events.

**Job ownership as cluster leases.**  A daemon's gossip frames announce
its accepted-but-unfinished jobs (id, tenant, fingerprint, full payload)
and its terminal states.  Receivers journal the announcements
(``cluster-job`` / ``cluster-terminal`` records), so every journal in
the fleet can answer "who owned what" offline.  The announcement *is*
the lease claim: ``{"worker": owner, "t": first_seen, "ttl": ...}``
heartbeated by the owner's node-level gossip.  When an owner is declared
dead and a job's lease has expired, the rendezvous-hash winner among the
surviving nodes adopts the job — journals a ``submit`` with
``adopted_from`` and force-pushes it into its own queue.  Re-execution
is bitwise-safe and cheap because results are keyed by job fingerprint
in the shared result cache.

**Routing and split-brain.**  ``submit`` frames are routed to the
fingerprint's rendezvous owner (one forwarding hop, marked ``route``),
so any daemon can front the fleet; clients fail over across a
``--peers`` list.  A daemon that cannot see a strict majority of the
configured fleet stops accepting (sheds with reason ``no-quorum``) and
pauses dispatch/settlement, so a partition minority can never race the
majority to a conflicting terminal state — the split-brain stance
documented in docs/ROBUSTNESS.md.  Quarantined fingerprints travel in
gossip too, so one daemon's circuit breaker protects every worker in
the fleet.

Chaos coverage lives in :func:`repro.design.chaos.run_cluster_chaos`
(``make cluster-chaos-smoke``): daemon SIGKILLs plus an injected
``partition:A|B:CYCLES`` fault, audited offline by
:mod:`repro.service.audit`.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from typing import TYPE_CHECKING, Any

from ..design.campaign import TTL_JITTER_FRAC, worker_ttl_jitter
from ..design.leases import lease_alive
from ..harness.faults import FaultPlan
from .protocol import (MAX_FRAME_BYTES, TERMINAL, ProtocolError, decode_frame,
                       encode_frame, error_response)

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from .daemon import SchedulerDaemon

#: Membership states of a peer, as this node sees it.
PEER_UNKNOWN = "unknown"    # configured, never yet contacted
PEER_UP = "up"
PEER_SUSPECT = "suspect"
PEER_DEAD = "dead"

#: Default seconds between gossip rounds.
DEFAULT_GOSSIP_INTERVAL = 1.0

#: Default peer lease TTL: silence past this is suspicion, past twice
#: this is death.  Jittered per (observer, peer) pair.
DEFAULT_PEER_TTL = 5.0

#: Upper bound on job/terminal announcements per gossip frame, so a
#: million-cell backlog cannot balloon one frame past the protocol's
#: size bound.  Announcements rotate, so everything is eventually told.
MAX_GOSSIP_JOBS = 256


def parse_address(address: str) -> tuple[str, Any]:
    """``"host:port"`` -> ``("tcp", (host, port))``; else a unix path."""
    if "/" not in address and address.count(":") == 1:
        host, _, port = address.rpartition(":")
        if port.isdigit():
            return "tcp", (host, int(port))
    return "unix", address


def rendezvous_owner(fingerprint: str, nodes: list[str]) -> str:
    """Highest-random-weight hash: the owning node for a fingerprint.

    Deterministic for any subset of nodes and minimally disruptive when
    the subset changes (only the dead node's jobs move), which is
    exactly the property job handoff needs.
    """
    if not nodes:
        raise ValueError("rendezvous over an empty node set")
    return max(sorted(nodes), key=lambda node: hashlib.sha256(
        f"{fingerprint}|{node}".encode("utf-8")).digest())


class PeerState:
    """One peer, as seen by the local daemon."""

    __slots__ = ("address", "index", "state", "misses", "ttl")

    def __init__(self, address: str, index: int, ttl: float) -> None:
        self.address = address
        self.index = index
        self.state = PEER_UNKNOWN
        self.misses = 0       # consecutive failed probes (observability)
        self.ttl = ttl        # jittered suspicion TTL for this peer


class ClusterManager:
    """Membership, job replication, routing and reclaim for one daemon.

    Constructed by :class:`repro.service.daemon.SchedulerDaemon` when it
    is given a ``--cluster`` member list; owns no sockets of its own
    except short-lived outbound gossip/forward connections.
    """

    def __init__(self, daemon: "SchedulerDaemon", members: list[str],
                 advertise: str, *,
                 gossip_interval: float = DEFAULT_GOSSIP_INTERVAL,
                 peer_ttl: float = DEFAULT_PEER_TTL,
                 faults: FaultPlan | None = None) -> None:
        if advertise not in members:
            raise ValueError(f"advertise address {advertise!r} is not in "
                             f"the cluster member list")
        if len(set(members)) != len(members):
            raise ValueError("duplicate addresses in cluster member list")
        self.daemon = daemon
        self.members = list(members)
        self.advertise = advertise
        self.index = members.index(advertise)
        self.gossip_interval = gossip_interval
        self.peer_ttl = peer_ttl
        self.job_lease_ttl = 2.0 * peer_ttl
        self.faults = faults
        self.peers: dict[str, PeerState] = {}
        for index, address in enumerate(members):
            if address == advertise:
                continue
            # Deterministic per-(observer, peer) jitter, exactly the
            # campaign worker-lease trick: observers desynchronise their
            # suspicion/death declarations instead of stampeding.
            jitter = worker_ttl_jitter(f"{advertise}->{address}")
            self.peers[address] = PeerState(
                address, index, peer_ttl * (1.0 + TTL_JITTER_FRAC * jitter))
        #: Jobs owned by peers: id -> {owner, tenant, fingerprint, job,
        #: state, cycles, ipc, error, t (local first-seen), ttl}.
        self.remote_jobs: dict[str, dict[str, Any]] = {}
        #: Last successful contact per peer address (local monotonic) —
        #: the beats table every job lease is checked against.
        self.beats: dict[str, float] = {}
        self.rounds = 0
        self.degraded = False
        self.started = time.monotonic()
        self._announce_rotor = 0
        self._dead_owners: set[str] = set()

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def live_addresses(self) -> list[str]:
        """Nodes eligible for routing/reclaim: self + peers seen UP."""
        return [self.advertise] + [peer.address
                                   for peer in self.peers.values()
                                   if peer.state == PEER_UP]

    def has_quorum(self) -> bool:
        """Can this node see a strict majority of the configured fleet?

        Peers never yet contacted count optimistically (a booting node
        is not a partition), suspected and dead peers do not.
        """
        live = 1 + sum(1 for peer in self.peers.values()
                       if peer.state in (PEER_UP, PEER_UNKNOWN))
        return 2 * live > len(self.members)

    def _transition(self, peer: PeerState, state: str) -> None:
        if peer.state == state:
            return
        previous, peer.state = peer.state, state
        self.daemon.event(f"peer.{state}" if state != PEER_UNKNOWN
                          else "peer.reset",
                          peer=peer.address, previous=previous,
                          misses=peer.misses)
        if state == PEER_DEAD:
            self._dead_owners.add(peer.address)
        elif state == PEER_UP:
            self._dead_owners.discard(peer.address)
        self._check_quorum()

    def _check_quorum(self) -> None:
        degraded = not self.has_quorum()
        if degraded == self.degraded:
            return
        self.degraded = degraded
        if degraded:
            self.daemon.event("cluster.degraded",
                              live=self.live_addresses(),
                              size=len(self.members))
        else:
            self.daemon.event("cluster.active",
                              live=self.live_addresses(),
                              size=len(self.members))

    def _contact(self, address: str, now: float) -> None:
        peer = self.peers.get(address)
        if peer is None:
            return
        self.beats[address] = now
        peer.misses = 0
        self._transition(peer, PEER_UP)

    def _membership_check(self, now: float) -> None:
        for peer in self.peers.values():
            if peer.state == PEER_DEAD:
                continue
            claim = {"worker": peer.address, "t": self.started,
                     "ttl": peer.ttl}
            if lease_alive(claim, self.beats, now):
                continue
            dead_claim = dict(claim, ttl=2.0 * peer.ttl)
            if not lease_alive(dead_claim, self.beats, now):
                self._transition(peer, PEER_DEAD)
            elif peer.state != PEER_SUSPECT:
                self._transition(peer, PEER_SUSPECT)

    # ------------------------------------------------------------------ #
    # the gossip loop
    # ------------------------------------------------------------------ #
    async def run(self) -> None:
        """Probe every peer once per interval, forever (until cancelled)."""
        while True:
            try:
                await self._gossip_round()
            except asyncio.CancelledError:
                raise
            except Exception as error:   # pragma: no cover - belt+braces
                self.daemon.event("cluster.error", error=str(error)[:200])
            await asyncio.sleep(self.gossip_interval)

    async def _gossip_round(self) -> None:
        frame = {"op": "gossip", "addr": self.advertise,
                 "index": self.index, "round": self.rounds,
                 **self._payload()}
        for peer in self.peers.values():
            if self.faults is not None and self.faults.partition_blocks(
                    self.index, peer.index, self.rounds):
                peer.misses += 1
                continue
            try:
                response = await self.call(peer.address, frame,
                                           timeout=self.gossip_interval * 2)
            except (OSError, ConnectionError, ProtocolError,
                    asyncio.TimeoutError, asyncio.IncompleteReadError):
                peer.misses += 1
                continue
            if not response.get("ok"):
                # A partitioned (or drained) receiver answers with an
                # error frame: reachable at the socket level, but not a
                # live fleet member from where we stand.
                peer.misses += 1
                continue
            now = time.monotonic()
            self._contact(peer.address, now)
            self._fold_payload(response, now)
        self.rounds += 1
        now = time.monotonic()
        self._membership_check(now)
        self._reclaim(now)

    async def call(self, address: str, frame: dict[str, Any], *,
                   timeout: float = 5.0) -> dict[str, Any]:
        """One request/response exchange with another daemon."""
        kind, where = parse_address(address)
        if kind == "tcp":
            host, port = where
            opening = asyncio.open_connection(host, port,
                                              limit=MAX_FRAME_BYTES + 1024)
        else:
            opening = asyncio.open_unix_connection(
                where, limit=MAX_FRAME_BYTES + 1024)
        reader, writer = await asyncio.wait_for(opening, timeout)
        try:
            writer.write(encode_frame(frame))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout)
        finally:
            writer.close()
        if not line:
            raise ConnectionError(f"no response from {address}")
        return decode_frame(line)

    # ------------------------------------------------------------------ #
    # gossip payloads (both directions share the same shape)
    # ------------------------------------------------------------------ #
    def _payload(self) -> dict[str, Any]:
        table = self.daemon.table
        jobs, terminals = [], []
        order = table.order
        # Rotate the announcement window so a backlog larger than one
        # frame's cap is still fully told across consecutive rounds.
        if len(order) > MAX_GOSSIP_JOBS:
            start = self._announce_rotor % len(order)
            order = order[start:] + order[:start]
            self._announce_rotor += MAX_GOSSIP_JOBS
        for job_id in order:
            job = table.jobs[job_id]
            if job.state in TERMINAL:
                if len(terminals) < MAX_GOSSIP_JOBS:
                    terminals.append({
                        "id": job.id, "state": job.state,
                        "fingerprint": job.fingerprint,
                        "cycles": job.cycles, "ipc": job.ipc,
                        "error": job.error, "owner": self.advertise})
            elif len(jobs) < MAX_GOSSIP_JOBS:
                jobs.append({"id": job.id, "tenant": job.tenant,
                             "fingerprint": job.fingerprint, "job": job.job,
                             "owner": self.advertise})
        quarantine = [{"fingerprint": fp,
                       "crashes": self.daemon.breaker.crashes.get(fp, 0)}
                      for fp in self.daemon.breaker.open_fingerprints()]
        members = [{"addr": self.advertise, "state": PEER_UP}]
        members += [{"addr": peer.address, "state": peer.state}
                    for peer in self.peers.values()]
        return {"members": members, "jobs": jobs, "terminals": terminals,
                "quarantine": quarantine}

    def _fold_payload(self, payload: dict[str, Any], now: float) -> None:
        for announced in payload.get("jobs") or []:
            self._fold_job(announced, now)
        for terminal in payload.get("terminals") or []:
            self._fold_terminal(terminal)
        for entry in payload.get("quarantine") or []:
            fingerprint = entry.get("fingerprint")
            if not fingerprint:
                continue
            if self.daemon.breaker.force_open(
                    fingerprint, int(entry.get("crashes") or 0)):
                self.daemon.event("breaker.sync",
                                  fingerprint=fingerprint[:12],
                                  crashes=entry.get("crashes"))

    def _fold_job(self, announced: dict[str, Any], now: float) -> None:
        job_id = announced.get("id")
        owner = announced.get("owner")
        if not job_id or not owner or owner == self.advertise:
            return
        if job_id in self.daemon.table.jobs or job_id in self.remote_jobs:
            return
        remote = {"id": job_id, "owner": owner,
                  "tenant": announced.get("tenant", "-"),
                  "fingerprint": announced.get("fingerprint", ""),
                  "job": announced.get("job") or {},
                  "state": None, "cycles": None, "ipc": None, "error": None,
                  "t": now, "ttl": self.job_lease_ttl}
        self.remote_jobs[job_id] = remote
        # Journaled so the replica (and the offline audit) survives a
        # local restart: this record *is* the lease claim we hold
        # against the owner's heartbeats.
        self.daemon.table.append("cluster-job", id=job_id, owner=owner,
                                 tenant=remote["tenant"],
                                 fingerprint=remote["fingerprint"],
                                 job=remote["job"], ttl=remote["ttl"])

    def _fold_terminal(self, terminal: dict[str, Any]) -> None:
        job_id = terminal.get("id")
        state = terminal.get("state")
        if not job_id or state not in TERMINAL:
            return
        own = self.daemon.table.jobs.get(job_id)
        if own is not None:
            if own.state in TERMINAL:
                return
            # A job we own (or adopted) was finished elsewhere — a
            # handoff that raced our own execution, or a rejoin after a
            # partition.  Fold the peer's terminal; never execute again.
            self.daemon.table.append("peer-terminal", id=job_id,
                                     state=state,
                                     cycles=terminal.get("cycles"),
                                     ipc=terminal.get("ipc"),
                                     error=terminal.get("error"),
                                     via=terminal.get("owner"))
            self.daemon.event("cluster.peer_terminal", id=job_id,
                              state=state, via=terminal.get("owner"))
            self.daemon.notify_watchers(job_id, state,
                                        cycles=terminal.get("cycles"),
                                        ipc=terminal.get("ipc"),
                                        error=terminal.get("error"))
            return
        remote = self.remote_jobs.get(job_id)
        if remote is None:
            remote = {"id": job_id, "owner": terminal.get("owner", "?"),
                      "tenant": "-", "fingerprint":
                          terminal.get("fingerprint", ""),
                      "job": {}, "state": None, "cycles": None, "ipc": None,
                      "error": None, "t": time.monotonic(),
                      "ttl": self.job_lease_ttl}
            self.remote_jobs[job_id] = remote
        if remote.get("state") in TERMINAL:
            return
        remote.update(state=state, cycles=terminal.get("cycles"),
                      ipc=terminal.get("ipc"), error=terminal.get("error"))
        self.daemon.table.append("cluster-terminal", id=job_id,
                                 owner=remote["owner"], state=state,
                                 cycles=remote["cycles"], ipc=remote["ipc"],
                                 error=remote["error"],
                                 fingerprint=remote["fingerprint"])
        self.daemon.notify_watchers(job_id, state, cycles=remote["cycles"],
                                    ipc=remote["ipc"],
                                    error=remote["error"])

    # ------------------------------------------------------------------ #
    # inbound gossip (the daemon's "gossip" op)
    # ------------------------------------------------------------------ #
    def handle_gossip(self, frame: dict[str, Any]) -> dict[str, Any]:
        sender = frame.get("addr")
        sender_index = frame.get("index")
        if sender not in self.peers:
            return error_response("gossip",
                                  f"unknown peer {sender!r} (not in this "
                                  f"daemon's cluster member list)")
        if self.faults is not None and isinstance(sender_index, int) \
                and self.faults.partition_blocks(self.index, sender_index,
                                                 self.rounds):
            # The injected partition: pretend the frame never arrived.
            return error_response("gossip", "unreachable (partitioned)")
        now = time.monotonic()
        self._contact(sender, now)
        self._fold_payload(frame, now)
        return {"ok": True, "op": "gossip", "addr": self.advertise,
                "index": self.index, "round": self.rounds,
                **self._payload()}

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def blocked_inbound(self, frame: dict[str, Any]) -> bool:
        """Is a forwarded frame from a partitioned sender? (drop it)"""
        route = frame.get("route")
        if self.faults is None or not isinstance(route, dict):
            return False
        sender_index = route.get("index")
        return isinstance(sender_index, int) and self.faults.partition_blocks(
            self.index, sender_index, self.rounds)

    async def route_submit(self, frame: dict[str, Any],
                           fingerprint: str) -> dict[str, Any] | None:
        """Forward a submit to its rendezvous owner; None = handle here.

        One hop at most: frames already carrying ``route`` (or a client
        ``pin``) are never forwarded again.  A failed forward falls back
        to local acceptance — availability over placement.
        """
        if frame.get("route") or frame.get("pin"):
            return None
        owner = rendezvous_owner(fingerprint, self.live_addresses())
        if owner == self.advertise:
            return None
        peer = self.peers[owner]
        if self.faults is not None and self.faults.partition_blocks(
                self.index, peer.index, self.rounds):
            peer.misses += 1
            return None
        forwarded = dict(frame)
        forwarded["route"] = {"via": self.advertise, "index": self.index}
        try:
            response = await self.call(owner, forwarded,
                                       timeout=self.gossip_interval * 4)
        except (OSError, ConnectionError, ProtocolError,
                asyncio.TimeoutError, asyncio.IncompleteReadError) as error:
            peer.misses += 1
            self.daemon.event("cluster.forward_fail", peer=owner,
                              id=frame.get("id"), error=str(error)[:120])
            return None
        response["routed"] = owner
        return response

    def remote_lookup(self, job_id: str) -> dict[str, Any] | None:
        """The replicated view of a job owned elsewhere, or None."""
        return self.remote_jobs.get(job_id)

    # ------------------------------------------------------------------ #
    # reclaim (lease-based job handoff)
    # ------------------------------------------------------------------ #
    def _reclaim(self, now: float) -> None:
        """Adopt expired-lease jobs of dead owners that hash to us.

        Never while degraded: a partition minority must not adopt the
        majority's jobs (it may be the one that is cut off).  Runs every
        round; all conditions are idempotent, so a job skipped this
        round (live lease, different winner) is re-examined next round.
        """
        if not self._dead_owners or not self.has_quorum():
            return
        nodes = self.live_addresses()
        for remote in list(self.remote_jobs.values()):
            if remote["owner"] not in self._dead_owners:
                continue
            if remote.get("state") in TERMINAL:
                continue
            if remote["id"] in self.daemon.table.jobs:
                continue
            claim = {"worker": remote["owner"], "t": remote["t"],
                     "ttl": remote["ttl"]}
            if lease_alive(claim, self.beats, now):
                continue
            if rendezvous_owner(remote["fingerprint"],
                                nodes) != self.advertise:
                continue
            self.daemon.adopt_job(remote, source=remote["owner"])

    # ------------------------------------------------------------------ #
    # recovery / status
    # ------------------------------------------------------------------ #
    def recover(self, records: list[dict[str, Any]]) -> int:
        """Rebuild the replicated-job table from journal replay."""
        now = time.monotonic()
        restored = 0
        for record in records:
            kind = record.get("type")
            if kind == "cluster-job":
                job_id = record.get("id")
                if not job_id or job_id in self.remote_jobs \
                        or job_id in self.daemon.table.jobs:
                    continue
                self.remote_jobs[job_id] = {
                    "id": job_id, "owner": record.get("owner", "?"),
                    "tenant": record.get("tenant", "-"),
                    "fingerprint": record.get("fingerprint", ""),
                    "job": record.get("job") or {}, "state": None,
                    "cycles": None, "ipc": None, "error": None,
                    "t": now, "ttl": record.get("ttl", self.job_lease_ttl)}
                restored += 1
            elif kind == "cluster-terminal":
                remote = self.remote_jobs.get(record.get("id") or "")
                if remote is not None and record.get("state") in TERMINAL:
                    remote.update(state=record.get("state"),
                                  cycles=record.get("cycles"),
                                  ipc=record.get("ipc"),
                                  error=record.get("error"))
        return restored

    def view(self) -> dict[str, Any]:
        """The membership table, for ``status`` responses."""
        now = time.monotonic()
        return {
            "advertise": self.advertise, "index": self.index,
            "size": len(self.members), "rounds": self.rounds,
            "quorum": self.has_quorum(), "degraded": self.degraded,
            "remote_jobs": len(self.remote_jobs),
            "peers": [{"addr": peer.address, "index": peer.index,
                       "state": peer.state, "misses": peer.misses,
                       "age": (round(now - self.beats[peer.address], 3)
                               if peer.address in self.beats else None)}
                      for peer in self.peers.values()],
        }
