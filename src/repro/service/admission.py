"""Admission control for the scheduler daemon.

Three independent gates, applied in order at ``submit`` time (see the
overload/degradation ladder in docs/ROBUSTNESS.md):

1. :class:`CircuitBreaker` — a fingerprint that has repeatedly *killed
   or wedged* workers is poison; further submissions are refused as
   ``quarantined`` before they can take another worker down.  After a
   configurable cooldown the circuit goes *half-open* and admits one
   probe, so a transiently-poisoned fingerprint can recover.
2. :class:`TokenBucket` — per-tenant rate limit; a bursty tenant is
   shed with a ``retry_after`` hint instead of starving everyone else.
3. Bounded queue depth (enforced by :class:`FairShareQueue.push`) — the
   daemon's memory and latency stay bounded under any load; overflow is
   shed, never silently dropped.

Dispatch order is per-tenant round-robin (:class:`FairShareQueue.pop`),
so one tenant's thousand-cell design cannot head-of-line-block another
tenant's three-cell smoke test.

Everything here is synchronous, allocation-light and driven by an
injected clock, so the unit tests (``tests/test_service_admission.py``)
are deterministic without sleeping.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Hashable

#: Default steady-state submissions/second per tenant.
DEFAULT_RATE = 50.0

#: Default burst allowance per tenant (bucket capacity).
DEFAULT_BURST = 100

#: Default bound on total queued (admitted, undispatched) jobs.
DEFAULT_QUEUE_DEPTH = 1024

#: Worker crashes/wedges a single fingerprint may cause before its
#: circuit opens and further attempts are quarantined.
DEFAULT_BREAKER_THRESHOLD = 3

#: Seconds an open circuit stays fully closed to traffic before one
#: half-open probe is allowed through (None = quarantine is permanent).
DEFAULT_BREAKER_COOLDOWN = 300.0

#: :meth:`CircuitBreaker.admit` verdicts.
ADMIT_OK = "ok"            # circuit closed: run normally
ADMIT_PROBE = "probe"      # circuit half-open: this one attempt probes it
ADMIT_REFUSE = "refuse"    # circuit open: quarantine the submission


@dataclass
class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``take(now)`` spends one token if available; ``retry_after(now)``
    says how long until the next token exists (the shed response's
    hint).  Time is a caller-supplied monotonic float, never sampled
    here.
    """

    rate: float = DEFAULT_RATE
    burst: float = DEFAULT_BURST
    tokens: float = field(default=-1.0)
    updated: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst <= 0:
            raise ValueError("token bucket needs rate > 0 and burst > 0")
        if self.tokens < 0:
            self.tokens = float(self.burst)

    def _refill(self, now: float) -> None:
        if now > self.updated:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.updated) * self.rate)
        self.updated = max(self.updated, now)

    def take(self, now: float) -> bool:
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds until one token will exist (0 when one already does)."""
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class FairShareQueue:
    """Per-tenant FIFOs drained round-robin, with one global depth bound.

    ``push`` returns False (shed) instead of growing past ``depth`` —
    the caller turns that into a load-shedding response.  ``pop``
    rotates tenants so every tenant with queued work gets one job out
    before any tenant gets a second.  FIFO order *within* a tenant is
    preserved (a design's cells dispatch in submission order when the
    tenant is alone).
    """

    def __init__(self, depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._queues: "OrderedDict[Hashable, deque]" = OrderedDict()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def tenants(self) -> list:
        return [tenant for tenant, queue in self._queues.items() if queue]

    def push(self, tenant: Hashable, item: Any, *,
             force: bool = False) -> bool:
        """Enqueue for ``tenant``; False when the global bound is hit.

        ``force=True`` bypasses the bound: the depth gate sheds *new*
        admissions, but a job that was already accepted (journaled) must
        never be droppable — crash re-queues and restart recovery push
        with force, transiently overshooting ``depth``.
        """
        if self._size >= self.depth and not force:
            return False
        self._queues.setdefault(tenant, deque()).append(item)
        self._size += 1
        return True

    def pop(self) -> Any | None:
        """The next item, round-robin across tenants; None when empty."""
        while self._queues:
            tenant, queue = next(iter(self._queues.items()))
            # Rotate the tenant to the back whether or not it had work,
            # so service order is independent of empty-queue history.
            self._queues.move_to_end(tenant)
            if queue:
                self._size -= 1
                item = queue.popleft()
                if not queue:
                    del self._queues[tenant]
                return item
            del self._queues[tenant]
        return None


class CircuitBreaker:
    """Per-fingerprint crash counting with a quarantine threshold.

    A *crash* is a worker death or wedge attributable to the job (not a
    clean deterministic failure — those are the job's own business and
    never open a circuit).  Counts are rebuilt from the daemon's journal
    on restart (``crash`` records), so a poison job cannot launder its
    history by killing the daemon too.

    Circuits are not permanently open: after ``cooldown`` seconds a
    single *half-open probe* is admitted (:meth:`admit` returns
    :data:`ADMIT_PROBE` once).  A successful probe closes the circuit
    (:meth:`record_success`); a crash during the probe re-opens it and
    restarts the cooldown.  ``cooldown=None`` restores the old
    permanent-quarantine behaviour.  Time is a caller-supplied monotonic
    float (falling back to ``time.monotonic()``), so tests drive the
    state machine without sleeping.
    """

    def __init__(self, threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 cooldown: float | None = DEFAULT_BREAKER_COOLDOWN) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, "
                             f"got {threshold}")
        if cooldown is not None and cooldown <= 0:
            raise ValueError(f"breaker cooldown must be > 0 or None, "
                             f"got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.crashes: dict[str, int] = {}
        self.opened: dict[str, float] = {}
        self.probing: set[str] = set()

    @staticmethod
    def _now(now: float | None) -> float:
        return time.monotonic() if now is None else now

    def record_crash(self, fingerprint: str,
                     now: float | None = None) -> bool:
        """Count one crash; True exactly when this crash (re-)opens the
        circuit — on reaching the threshold, or on a failed half-open
        probe.  (Re-)opening restarts the cooldown clock."""
        count = self.crashes.get(fingerprint, 0) + 1
        self.crashes[fingerprint] = count
        if count < self.threshold:
            return False
        failed_probe = fingerprint in self.probing
        self.probing.discard(fingerprint)
        newly_open = count == self.threshold or failed_probe
        self.opened[fingerprint] = self._now(now)
        return newly_open

    def record_success(self, fingerprint: str) -> bool:
        """A job with this fingerprint completed; True exactly when that
        was a half-open probe and the circuit closes because of it."""
        if fingerprint not in self.probing:
            return False
        self.probing.discard(fingerprint)
        self.crashes.pop(fingerprint, None)
        self.opened.pop(fingerprint, None)
        return True

    def force_open(self, fingerprint: str, crashes: int = 0,
                   now: float | None = None) -> bool:
        """Open the circuit without local evidence (a peer's quarantine
        propagated by gossip); True when it was not already open."""
        if self.is_open(fingerprint):
            self.crashes[fingerprint] = max(self.crashes[fingerprint],
                                            crashes, self.threshold)
            return False
        self.crashes[fingerprint] = max(crashes, self.threshold)
        self.opened[fingerprint] = self._now(now)
        self.probing.discard(fingerprint)
        return True

    def admit(self, fingerprint: str, now: float | None = None) -> str:
        """Admission verdict for one submission of this fingerprint.

        :data:`ADMIT_OK` while the circuit is closed; :data:`ADMIT_PROBE`
        exactly once per cooldown expiry (the probe attempt);
        :data:`ADMIT_REFUSE` otherwise.
        """
        if self.crashes.get(fingerprint, 0) < self.threshold:
            return ADMIT_OK
        if self.cooldown is None or fingerprint in self.probing:
            return ADMIT_REFUSE
        opened = self.opened.get(fingerprint)
        if opened is None:
            return ADMIT_REFUSE
        if self._now(now) - opened >= self.cooldown:
            self.probing.add(fingerprint)
            return ADMIT_PROBE
        return ADMIT_REFUSE

    def is_open(self, fingerprint: str) -> bool:
        """Open *or* half-open — the count is at or past the threshold."""
        return self.crashes.get(fingerprint, 0) >= self.threshold

    def open_fingerprints(self) -> list[str]:
        """Fingerprints whose circuit is open or half-open, sorted."""
        return sorted(fp for fp, count in self.crashes.items()
                      if count >= self.threshold)

    def open_count(self) -> int:
        return sum(1 for count in self.crashes.values()
                   if count >= self.threshold)
