"""The always-on scheduler daemon behind ``repro-serve``.

An asyncio server speaking the NDJSON protocol
(:mod:`repro.service.protocol`) over a unix socket (default) or TCP.
The daemon owns:

* a **durable submission queue** — every accepted job is a ``submit``
  record in a write-ahead journal (:mod:`repro.design.journal`) before
  the client hears "queued"; terminal states (``done`` / ``failed`` /
  ``quarantined``) and worker crashes (``crash``) are journaled the
  same way, so a SIGKILL at any byte loses nothing: the next
  incarnation re-folds the journal and re-queues whatever lacks a
  terminal record (re-dispatch hits the result cache, so recovery is
  idempotent *and* cheap);
* **admission control** (:mod:`repro.service.admission`) — circuit
  breaker, per-tenant token buckets, bounded fair-share queue; refusals
  are explicit shed responses, never silent drops;
* a **supervised worker pool** (:mod:`repro.service.supervisor`) —
  heartbeat-watchdogged subprocess workers, respawned with backoff;
  worker deaths and wedges are journaled crashes that feed the breaker,
  so a poison job is quarantined after ``breaker_threshold`` kills
  instead of stalling the queue;
* **graceful drain** — SIGTERM (or a ``drain`` request) stops
  admission, lets in-flight jobs finish (bounded by ``drain_grace``),
  folds the journal into a snapshot and exits 0.  Queued jobs stay
  journaled for the next incarnation;
* optionally a **cluster membership** (:mod:`repro.service.cluster`,
  ``--cluster``/``--advertise``) — gossip heartbeats to every peer,
  lease-based handoff of a dead peer's jobs, rendezvous-hash submit
  routing, and a no-quorum stance that stops acceptance and settlement
  on the minority side of a partition.

Observability: every scheduling event (shed, breaker open, respawn,
drain...) is appended to a durable ``events.jsonl`` in the state
directory *and* kept in the engine's ``{"kind", "t", "payload"}`` trace
shape; ``--trace FILE`` writes the whole incarnation as a Chrome trace
lane on exit, merging straight into the existing telemetry tooling.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import time
from pathlib import Path
from typing import Any, Sequence

from ..design.journal import Journal, load_snapshot, replay_journal, \
    write_snapshot
from ..harness.cache import ResultCache
from ..harness.engine import DEFAULT_RETRIES, Backoff
from ..harness.exit_codes import EXIT_OK, EXIT_PARTIAL
from ..harness.faults import FaultPlan, FaultSpecError
from ..harness.jobs import JobError, SimJob
from .admission import (ADMIT_PROBE, ADMIT_REFUSE, DEFAULT_BREAKER_COOLDOWN,
                        DEFAULT_BREAKER_THRESHOLD, DEFAULT_BURST,
                        DEFAULT_QUEUE_DEPTH, DEFAULT_RATE, CircuitBreaker,
                        FairShareQueue, TokenBucket)
from .cluster import (DEFAULT_GOSSIP_INTERVAL, DEFAULT_PEER_TTL, PEER_DEAD,
                      ClusterManager)
from .protocol import (DONE, FAILED, MAX_FRAME_BYTES, PROTOCOL_VERSION,
                       QUARANTINED, QUEUED, RUNNING, SHED, TERMINAL,
                       ProtocolError, decode_frame, encode_frame,
                       error_response)
from .supervisor import DEFAULT_HB_TIMEOUT, Dispatch, Supervisor

#: Default service state directory (journal, events, snapshot, socket).
DEFAULT_STATE_DIR = ".repro-serve"

#: Socket file name inside the state directory.
SOCKET_NAME = "serve.sock"

#: Journal and event-stream file names inside the state directory.
QUEUE_JOURNAL = "journal.jsonl"
EVENTS_JOURNAL = "events.jsonl"

#: The queue snapshot's digest key (there is no design digest to bind;
#: this guards against pointing --state-dir at a campaign store).
QUEUE_DIGEST = "repro-service-queue"

#: Default seconds a drain waits for in-flight jobs before exiting.
DEFAULT_DRAIN_GRACE = 30.0


class JobRecord:
    """One accepted job's folded state (journal + in-memory overlay)."""

    __slots__ = ("id", "tenant", "fingerprint", "ordinal", "job", "state",
                 "crashes", "retries", "error", "cycles", "ipc", "running")

    def __init__(self, id: str, tenant: str, fingerprint: str, ordinal: int,
                 job: dict[str, Any]) -> None:
        self.id = id
        self.tenant = tenant
        self.fingerprint = fingerprint
        self.ordinal = ordinal
        self.job = job
        self.state = QUEUED
        self.crashes = 0     # journaled worker deaths/wedges (durable)
        self.retries = 0     # in-band transient retries (this incarnation)
        self.error: str | None = None
        self.cycles: int | None = None
        self.ipc: float | None = None
        self.running = False   # in-flight right now (never journaled)

    def public_state(self) -> str:
        if self.state == QUEUED and self.running:
            return RUNNING
        return self.state

    def to_snapshot(self) -> dict[str, Any]:
        return {"id": self.id, "tenant": self.tenant,
                "fingerprint": self.fingerprint, "job": self.job,
                "status": self.state, "crashes": self.crashes,
                "error": self.error, "cycles": self.cycles, "ipc": self.ipc}

    @classmethod
    def from_snapshot(cls, ordinal: int, data: dict[str, Any]) -> "JobRecord":
        record = cls(data["id"], data.get("tenant", "-"),
                     data["fingerprint"], ordinal, data.get("job") or {})
        record.state = data.get("status", QUEUED)
        record.crashes = int(data.get("crashes") or 0)
        record.error = data.get("error")
        record.cycles = data.get("cycles")
        record.ipc = data.get("ipc")
        return record


class JobTable:
    """The durable queue state: fold(snapshot) + fold(journal).

    The same recovery shape as a campaign store, with jobs instead of
    cells: ``submit`` introduces a job; ``done`` / ``failed`` /
    ``quarantined`` are idempotent terminal folds; ``crash`` counts
    attribution for the circuit breaker.  Unknown record types are
    ignored (forward compatibility), corrupt records and torn tails are
    dropped by journal replay exactly as campaigns drop them.
    """

    def __init__(self, state_dir: Path, worker_id: str,
                 faults: FaultPlan | None = None) -> None:
        self.state_dir = state_dir
        self.jobs: dict[str, JobRecord] = {}
        self.order: list[str] = []          # submission (= ordinal) order
        self.next_ordinal = 0
        self.replay_corrupt = 0
        self.replay_torn = False
        #: Replayed cluster-replication records (for ClusterManager
        #: recovery); empty on a non-clustered daemon's journal.
        self.cluster_records: list[dict[str, Any]] = []
        self.journal = Journal(state_dir / QUEUE_JOURNAL, worker=worker_id,
                               faults=faults)

    # -- folding ------------------------------------------------------- #
    def load(self) -> None:
        for ordinal, data in sorted(
                load_snapshot(self.state_dir, QUEUE_DIGEST).items()):
            record = JobRecord.from_snapshot(ordinal, data)
            self.jobs[record.id] = record
            self.order.append(record.id)
            self.next_ordinal = max(self.next_ordinal, ordinal + 1)
        replay = replay_journal(self.state_dir / QUEUE_JOURNAL)
        self.replay_corrupt = replay.corrupt_records
        self.replay_torn = replay.torn_tail
        for record in replay.records:
            self.fold(record)
            if record.get("type") in ("cluster-job", "cluster-terminal"):
                self.cluster_records.append(record)

    def fold(self, record: dict[str, Any]) -> None:
        kind = record.get("type")
        job_id = record.get("id")
        if kind == "submit":
            if job_id in self.jobs:
                return   # replayed duplicate (idempotent)
            ordinal = int(record.get("ordinal") or 0)
            job = JobRecord(job_id, record.get("tenant", "-"),
                            record.get("fingerprint", ""), ordinal,
                            record.get("job") or {})
            self.jobs[job_id] = job
            self.order.append(job_id)
            self.next_ordinal = max(self.next_ordinal, ordinal + 1)
            return
        job = self.jobs.get(job_id)
        if job is None:
            return   # terminal for a submit we never saw (foreign/corrupt)
        if kind == "crash":
            job.crashes += 1
        elif kind in ("done", "failed", "quarantined") \
                and job.state not in TERMINAL:
            job.state = {"done": DONE, "failed": FAILED,
                         "quarantined": QUARANTINED}[kind]
            job.error = record.get("error")
            job.cycles = record.get("cycles")
            job.ipc = record.get("ipc")
        elif kind == "peer-terminal" and job.state not in TERMINAL \
                and record.get("state") in TERMINAL:
            # A cluster peer executed this job for us (handoff/rejoin):
            # terminal for scheduling, but distinct in the journal so
            # the offline audit never counts it as a local execution.
            job.state = record["state"]
            job.error = record.get("error")
            job.cycles = record.get("cycles")
            job.ipc = record.get("ipc")

    # -- appends (journal + fold in one step) -------------------------- #
    def append(self, kind: str, **payload: Any) -> None:
        record, _ = self.journal.append(kind, **payload)
        self.fold(record)

    def pending(self) -> list[JobRecord]:
        """Accepted jobs without a terminal state, in submission order."""
        return [self.jobs[job_id] for job_id in self.order
                if self.jobs[job_id].state not in TERMINAL]

    def counts(self) -> dict[str, int]:
        out = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0, QUARANTINED: 0}
        for job in self.jobs.values():
            out[job.public_state()] += 1
        return out

    def snapshot(self) -> bool:
        return write_snapshot(
            self.state_dir, QUEUE_DIGEST,
            {self.jobs[job_id].ordinal: self.jobs[job_id].to_snapshot()
             for job_id in self.order})


class SchedulerDaemon:
    """The asyncio server tying queue, admission and pool together."""

    def __init__(self, *, state_dir: str | Path = DEFAULT_STATE_DIR,
                 socket_path: str | Path | None = None,
                 host: str | None = None, port: int | None = None,
                 cache_dir: str | Path | None = None,
                 workers: int = 2,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 rate: float = DEFAULT_RATE, burst: float = DEFAULT_BURST,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_cooldown: float | None = DEFAULT_BREAKER_COOLDOWN,
                 retries: int = DEFAULT_RETRIES,
                 timeout: float | None = None,
                 hb_timeout: float = DEFAULT_HB_TIMEOUT,
                 drain_grace: float = DEFAULT_DRAIN_GRACE,
                 trace: str | Path | None = None,
                 cluster_members: Sequence[str] | None = None,
                 advertise: str | None = None,
                 gossip_interval: float = DEFAULT_GOSSIP_INTERVAL,
                 peer_ttl: float = DEFAULT_PEER_TTL,
                 faults: FaultPlan | None = None,
                 log=None) -> None:
        self.state_dir = Path(state_dir)
        self.socket_path = (Path(socket_path) if socket_path is not None
                            else self.state_dir / SOCKET_NAME)
        self.host = host
        self.port = port
        self.cache = ResultCache(cache_dir) if cache_dir else ResultCache()
        self.workers = workers
        self.retries = retries
        self.timeout = timeout
        self.drain_grace = drain_grace
        self.trace_path = Path(trace) if trace else None
        self.faults = faults
        self.log = log if log is not None else sys.stderr

        self.worker_id = f"serve-{int(time.time())}"
        self.table = JobTable(self.state_dir, self.worker_id)
        self.queue = FairShareQueue(depth=queue_depth)
        self.buckets: dict[str, TokenBucket] = {}
        self.rate, self.burst = rate, burst
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      cooldown=breaker_cooldown)
        self._probes: dict[str, str] = {}   # fingerprint -> probe job id
        self.supervisor = Supervisor(workers, cache_dir=cache_dir,
                                     hb_timeout=hb_timeout,
                                     backoff=Backoff(),
                                     faults=faults, on_event=self.event)

        self.started = time.monotonic()
        self.draining = False
        self.shed_count = 0
        self.frames_received = 0
        self.dispatched = 0
        self.events: list[dict[str, Any]] = []
        self._events_journal = Journal(self.state_dir / EVENTS_JOURNAL,
                                       worker=self.worker_id)
        self._kick = asyncio.Event()
        self._drained = asyncio.Event()
        self._watchers: list[tuple[set[str], asyncio.Queue]] = []
        self._inflight = 0
        self._server: asyncio.AbstractServer | None = None

        self.cluster: ClusterManager | None = None
        if cluster_members:
            if advertise is None:
                raise ValueError("clustered daemons need an advertise "
                                 "address (their own entry in the member "
                                 "list)")
            self.cluster = ClusterManager(
                self, list(cluster_members), advertise,
                gossip_interval=gossip_interval, peer_ttl=peer_ttl,
                faults=faults)

    # ------------------------------------------------------------------ #
    # logging / events
    # ------------------------------------------------------------------ #
    def _log(self, message: str) -> None:
        print(f"[repro-serve {time.strftime('%H:%M:%S')}] {message}",
              file=self.log, flush=True)

    def event(self, kind: str, **payload: Any) -> None:
        """One scheduling event: trace lane + durable events journal."""
        self.events.append({"kind": kind,
                            "t": time.monotonic() - self.started,
                            "payload": payload})
        self._events_journal.append("event", kind=kind, **payload)

    # ------------------------------------------------------------------ #
    # startup / recovery
    # ------------------------------------------------------------------ #
    def recover(self) -> int:
        """Fold snapshot + journal; re-queue every non-terminal job."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.table.load()
        if self.table.replay_corrupt or self.table.replay_torn:
            self.event("journal.damage", corrupt=self.table.replay_corrupt,
                       torn_tail=self.table.replay_torn)
        for job in self.jobs_by_fingerprint_crashes():
            # Rebuild breaker state from journaled crash attribution so
            # a poison job cannot reset its count by killing the daemon.
            for _ in range(job.crashes):
                self.breaker.record_crash(job.fingerprint)
        requeued = 0
        for job in self.table.pending():
            verdict = self.breaker.admit(job.fingerprint)
            if verdict == ADMIT_REFUSE:
                self.table.append("quarantined", id=job.id,
                                  fingerprint=job.fingerprint,
                                  error="circuit breaker open "
                                        "(recovered poison job)")
                self.event("breaker.quarantine", id=job.id,
                           fingerprint=job.fingerprint[:12])
                continue
            if verdict == ADMIT_PROBE:
                self._probes[job.fingerprint] = job.id
                self.event("breaker.half_open",
                           fingerprint=job.fingerprint[:12], id=job.id)
            self.queue.push(job.tenant, job.id, force=True)
            requeued += 1
        if self.cluster is not None:
            restored = self.cluster.recover(self.table.cluster_records)
            if restored:
                self.event("cluster.recover", remote_jobs=restored)
        return requeued

    def jobs_by_fingerprint_crashes(self) -> list[JobRecord]:
        return [job for job in self.table.jobs.values() if job.crashes]

    # ------------------------------------------------------------------ #
    # the server
    # ------------------------------------------------------------------ #
    async def serve(self) -> int:
        requeued = self.recover()
        self._log(f"recovered {len(self.table.jobs)} job(s), "
                  f"re-queued {requeued}")
        self.event("daemon.start", jobs=len(self.table.jobs),
                   requeued=requeued, workers=self.workers)
        # Signal handlers first: a SIGTERM is a drain request from the
        # moment the socket exists, never a default-action kill.
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda s=sig: asyncio.ensure_future(
                        self.drain(f"signal {s.name}")))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

        # Bind before the pool warms up: clients may connect and queue
        # while worker subprocesses are still booting.  The stream limit
        # sits just past the protocol frame bound so an oversized line
        # is a typed refusal, never an unhandled LimitOverrunError.
        if self.host is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port,
                limit=MAX_FRAME_BYTES + 1024)
            where = f"{self.host}:{self.port}"
        else:
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=str(self.socket_path),
                limit=MAX_FRAME_BYTES + 1024)
            where = str(self.socket_path)
        self._log(f"listening on {where} "
                  f"({self.workers} worker(s), pid {os.getpid()})")
        await self.supervisor.start()

        gossip = None
        if self.cluster is not None:
            gossip = asyncio.ensure_future(self.cluster.run())
            self._log(f"clustered: node {self.cluster.index} of "
                      f"{len(self.cluster.members)} "
                      f"(advertise {self.cluster.advertise})")
        dispatchers = [asyncio.ensure_future(self._dispatch_loop())
                       for _ in range(self.workers)]
        await self._drained.wait()
        if gossip is not None:
            gossip.cancel()
            await asyncio.gather(gossip, return_exceptions=True)
        for task in dispatchers:
            task.cancel()
        await asyncio.gather(*dispatchers, return_exceptions=True)
        self._server.close()
        await self._server.wait_closed()
        await self.supervisor.close()
        ok = self.table.snapshot()
        self.event("daemon.stop", snapshot=ok,
                   pending=len(self.table.pending()))
        if self.trace_path is not None:
            self._write_trace()
        self._log(f"drained: snapshot={'ok' if ok else 'FAILED'}, "
                  f"{len(self.table.pending())} job(s) left for the next "
                  f"incarnation")
        return EXIT_OK

    def _write_trace(self) -> None:
        from ..telemetry.trace import merge_chrome_traces
        doc = merge_chrome_traces([], engine_events=self.events)
        try:
            self.trace_path.parent.mkdir(parents=True, exist_ok=True)
            self.trace_path.write_text(json.dumps(doc), encoding="utf-8")
        except OSError as error:   # pragma: no cover - best effort
            self._log(f"trace write failed: {error}")

    async def drain(self, reason: str) -> None:
        """Stop admitting, let in-flight work finish, snapshot, stop."""
        if self.draining:
            return
        self.draining = True
        self._log(f"draining ({reason}); refusing new submissions")
        self.event("daemon.drain", reason=reason,
                   queued=len(self.queue), inflight=self._inflight)
        deadline = time.monotonic() + self.drain_grace
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        self._drained.set()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch_loop(self) -> None:
        while True:
            if self.draining:
                return
            if self.cluster is not None and not self.cluster.has_quorum():
                # Split-brain stance: a partition minority neither
                # dispatches nor settles — the majority side may be
                # reclaiming these very jobs right now.
                await asyncio.sleep(0.1)
                continue
            job_id = self.queue.pop()
            if job_id is None:
                self._kick.clear()
                try:
                    await asyncio.wait_for(self._kick.wait(), timeout=0.25)
                except asyncio.TimeoutError:
                    pass
                continue
            job = self.table.jobs[job_id]
            if job.state in TERMINAL:
                continue
            if self.breaker.is_open(job.fingerprint) \
                    and self._probes.get(job.fingerprint) != job.id:
                # Opened after this job was queued (a crash streak, or a
                # peer's quarantine arriving by gossip).
                self._terminal(job, QUARANTINED,
                               error="circuit breaker open "
                                     "(fingerprint quarantined)")
                continue
            self._inflight += 1
            job.running = True
            try:
                await self._dispatch_one(job)
            finally:
                job.running = False
                self._inflight -= 1

    async def _dispatch_one(self, job: JobRecord) -> None:
        # Dedup against the cache at the last moment too: a previous
        # incarnation's worker may have finished this fingerprint after
        # the submit was journaled but before any terminal record.
        cached = await asyncio.get_running_loop().run_in_executor(
            None, self.cache.get, job.fingerprint)
        if cached is not None:
            self._terminal(job, DONE, cycles=cached.cycles, ipc=cached.ipc,
                           cached=True)
            return
        self.dispatched += 1
        dispatch = await self.supervisor.run_job({
            "id": job.id, "ordinal": job.ordinal, "job": job.job,
            "timeout": self.timeout})
        self._settle(job, dispatch)

    def _settle(self, job: JobRecord, dispatch: Dispatch) -> None:
        if self.cluster is not None and not self.cluster.has_quorum() \
                and job.state not in TERMINAL:
            # Quorum was lost while this job was in flight: journaling a
            # terminal now could conflict with a majority-side reclaim.
            # Re-queue; on rejoin the dispatch re-runs (a cache hit, or
            # folds the peer's terminal first).
            self.event("cluster.defer", id=job.id, tag=dispatch.tag)
            self.queue.push(job.tenant, job.id, force=True)
            return
        if dispatch.tag == "ok":
            self._terminal(job, DONE, cycles=dispatch.cycles,
                           ipc=dispatch.ipc, cached=dispatch.cached)
            return
        if dispatch.crashed:
            self.table.append("crash", id=job.id,
                              fingerprint=job.fingerprint,
                              error=dispatch.error,
                              wedged=dispatch.wedged)
            opened = self.breaker.record_crash(job.fingerprint)
            self._probes.pop(job.fingerprint, None)
            self.event("worker.crash", id=job.id, wedged=dispatch.wedged,
                       crashes=job.crashes)
            if opened:
                self.event("breaker.open", fingerprint=job.fingerprint[:12],
                           crashes=self.breaker.crashes[job.fingerprint])
            if self.breaker.is_open(job.fingerprint):
                self._terminal(job, QUARANTINED,
                               error=f"circuit breaker open after "
                                     f"{job.crashes} worker crash(es): "
                                     f"{dispatch.error}")
            else:
                self._requeue(job, dispatch.error)
            return
        if dispatch.tag == "err" and dispatch.transient \
                and job.retries < self.retries:
            job.retries += 1
            self._requeue(job, dispatch.error)
            return
        self._terminal(job, FAILED,
                       error=dispatch.error or dispatch.tag)

    def _requeue(self, job: JobRecord, reason: str | None) -> None:
        self.event("job.requeue", id=job.id, reason=(reason or "")[:120])
        # Forced: this job already passed admission; the depth bound
        # sheds new work, it never drops accepted work.
        self.queue.push(job.tenant, job.id, force=True)
        self._kick.set()

    def _terminal(self, job: JobRecord, state: str, *,
                  cycles: int | None = None, ipc: float | None = None,
                  error: str | None = None, cached: bool = False) -> None:
        kind = {DONE: "done", FAILED: "failed",
                QUARANTINED: "quarantined"}[state]
        payload: dict[str, Any] = {"id": job.id,
                                   "fingerprint": job.fingerprint}
        if state == DONE:
            payload.update(cycles=cycles, ipc=ipc, cached=cached)
        else:
            payload["error"] = (error or "")[:500] or None
        self.table.append(kind, **payload)
        self.event(f"job.{kind}", id=job.id, cached=cached)
        if state == DONE and self.breaker.record_success(job.fingerprint):
            self._probes.pop(job.fingerprint, None)
            self.event("breaker.close", fingerprint=job.fingerprint[:12],
                       id=job.id)
        self.notify_watchers(job.id, state, cycles=job.cycles, ipc=job.ipc,
                             error=job.error)

    def notify_watchers(self, job_id: str, state: str, *,
                        cycles: int | None = None, ipc: float | None = None,
                        error: str | None = None) -> None:
        """Push one terminal frame to every watcher waiting on this id.

        Called for local terminals and — on a clustered daemon — for
        remote terminals learned by gossip, so a client may watch ids on
        any fleet member.
        """
        frame = {"event": "terminal", "id": job_id, "state": state,
                 "cycles": cycles, "ipc": ipc, "error": error}
        for ids, queue in self._watchers:
            if job_id in ids:
                queue.put_nowait(frame)

    def adopt_job(self, remote: dict[str, Any], source: str) -> None:
        """Take over a dead peer's journaled-but-unfinished job.

        Called by the cluster manager once this node wins the rendezvous
        election for an expired lease: journal a fresh ``submit`` (with
        ``adopted_from`` attribution for the offline audit) and
        force-push it — adopted work was already admitted once, it is
        never shed.  Re-execution is bitwise-safe: the result cache is
        keyed by job fingerprint.
        """
        tenant = remote.get("tenant", "-")
        ordinal = self.table.next_ordinal
        self.table.append("submit", id=remote["id"], tenant=tenant,
                          fingerprint=remote.get("fingerprint", ""),
                          ordinal=ordinal, job=remote.get("job"),
                          adopted_from=source)
        self.queue.push(tenant, remote["id"], force=True)
        self.event("cluster.reclaim", id=remote["id"], source=source,
                   ordinal=ordinal)
        self._kick.set()

    # ------------------------------------------------------------------ #
    # connections
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (OSError, ConnectionError):
                    break
                except ValueError:
                    # The line blew past the stream limit (an oversized
                    # frame): answer a typed refusal and close — the
                    # remaining bytes of that line cannot be resynced.
                    try:
                        writer.write(encode_frame(error_response(
                            None, f"frame exceeds {MAX_FRAME_BYTES} "
                                  f"bytes")))
                        await writer.drain()
                    except (OSError, ConnectionError):
                        pass
                    break
                if not raw:
                    break
                ordinal = self.frames_received
                self.frames_received += 1
                if self.faults is not None \
                        and self.faults.service_socket_drop(ordinal):
                    self.event("socket.drop", frame=ordinal)
                    break
                try:
                    frame = decode_frame(raw)
                except ProtocolError as error:
                    writer.write(encode_frame(error_response(None,
                                                             str(error))))
                    await writer.drain()
                    continue
                op = frame.get("op")
                if op == "watch":
                    await self._op_watch(frame, writer)
                    continue
                if op == "submit":
                    response = await self._submit_entry(frame)
                else:
                    response = self._respond(op, frame)
                writer.write(encode_frame(response))
                try:
                    await writer.drain()
                except (OSError, ConnectionError):
                    break
                if op == "drain":
                    asyncio.ensure_future(self.drain("drain request"))
        except asyncio.CancelledError:
            # Server shutdown mid-request: end the connection quietly
            # (clients reconnect; jobs are journaled either way).
            pass
        finally:
            try:
                writer.close()
            except Exception:   # noqa: BLE001 - already torn down
                pass

    def _respond(self, op: str | None,
                 frame: dict[str, Any]) -> dict[str, Any]:
        if op == "submit":
            return self._op_submit(frame)
        if op == "status":
            return self._op_status()
        if op == "result":
            return self._op_result(frame)
        if op == "gossip":
            if self.cluster is None:
                return error_response("gossip",
                                      "this daemon is not clustered")
            return self.cluster.handle_gossip(frame)
        if op == "drain":
            return {"ok": True, "op": "drain", "draining": True}
        return error_response(op, f"unknown op {op!r}")

    # -- submit -------------------------------------------------------- #
    async def _submit_entry(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Cluster-aware front door for ``submit``: route, then accept.

        Non-clustered daemons fall straight through to the synchronous
        admission ladder.  Clustered ones first consult the replicated
        job table (a peer may already own or have finished this id),
        then forward the frame to its rendezvous owner — unless the
        frame is pinned, already forwarded once, or quorum is lost.
        """
        if self.cluster is None:
            return self._op_submit(frame)
        if self.cluster.blocked_inbound(frame):
            return error_response("submit", "unreachable (partitioned)")
        job_id = frame.get("id")
        if isinstance(job_id, str) and job_id \
                and job_id not in self.table.jobs:
            remote = self.cluster.remote_lookup(job_id)
            if remote is not None:
                if remote.get("state") in TERMINAL:
                    return {"ok": True, "op": "submit", "id": job_id,
                            "state": remote["state"], "duplicate": True,
                            "remote": remote["owner"],
                            "cycles": remote["cycles"],
                            "ipc": remote["ipc"], "error": remote["error"]}
                owner = self.cluster.peers.get(remote["owner"])
                if owner is not None and owner.state != PEER_DEAD:
                    # The owner is up (or merely suspect — slowness must
                    # not fork ownership): idempotent duplicate, answer
                    # without re-accepting.  Only a DEAD owner falls
                    # through — resubmission is then the client-side
                    # takeover path, racing the lease reclaim at worst
                    # into an agreeing duplicate the audit tolerates.
                    return {"ok": True, "op": "submit", "id": job_id,
                            "state": QUEUED, "duplicate": True,
                            "remote": remote["owner"]}
            if self.cluster.has_quorum() and not self.draining:
                try:
                    job = SimJob.from_payload(frame.get("job") or {})
                except (JobError, KeyError, TypeError, ValueError):
                    pass   # the local ladder produces the typed error
                else:
                    routed = await self.cluster.route_submit(
                        frame, job.fingerprint())
                    if routed is not None:
                        return routed
        return self._op_submit(frame)

    def _op_submit(self, frame: dict[str, Any]) -> dict[str, Any]:
        job_id = frame.get("id")
        tenant = str(frame.get("tenant") or "-")
        if not isinstance(job_id, str) or not job_id:
            return error_response("submit", "submit needs a string id")
        known = self.table.jobs.get(job_id)
        if known is not None:
            # Idempotent resubmission (reconnect, concurrent client):
            # answer with the job's current state, enqueue nothing.
            return {"ok": True, "op": "submit", "id": job_id,
                    "state": known.public_state(), "duplicate": True,
                    "cycles": known.cycles, "ipc": known.ipc,
                    "error": known.error}
        try:
            job = SimJob.from_payload(frame.get("job") or {})
        except (JobError, KeyError, TypeError, ValueError) as error:
            return error_response("submit",
                                  f"bad job payload: {error}")
        fingerprint = job.fingerprint()
        verdict = self.breaker.admit(fingerprint)
        if verdict == ADMIT_REFUSE:
            # Refused before admission: this fingerprint kills workers.
            self.event("breaker.refuse", id=job_id,
                       fingerprint=fingerprint[:12])
            return {"ok": True, "op": "submit", "id": job_id,
                    "state": QUARANTINED, "accepted": False,
                    "reason": "circuit breaker open for this fingerprint"}
        probe = verdict == ADMIT_PROBE
        if self.draining:
            self._unprobe(fingerprint, probe)
            return self._shed(job_id, "draining", retry_after=None)
        if self.cluster is not None and not self.cluster.has_quorum():
            # Split-brain stance: a daemon that cannot see a majority
            # of its fleet accepts nothing (and journals no terminals).
            self._unprobe(fingerprint, probe)
            return self._shed(job_id, "no-quorum",
                              retry_after=2 * self.cluster.gossip_interval)
        bucket = self.buckets.setdefault(
            tenant, TokenBucket(rate=self.rate, burst=self.burst))
        now = time.monotonic()
        if not bucket.take(now):
            self._unprobe(fingerprint, probe)
            return self._shed(job_id, "rate-limit",
                              retry_after=bucket.retry_after(now),
                              tenant=tenant)
        cached = self.cache.get(fingerprint)
        if cached is not None:
            # Free repeat query: accept + complete in one breath.
            ordinal = self.table.next_ordinal
            self.table.append("submit", id=job_id, tenant=tenant,
                              fingerprint=fingerprint, ordinal=ordinal,
                              job=frame.get("job"))
            self._mark_probe(fingerprint, job_id, probe)
            record = self.table.jobs[job_id]
            self._terminal(record, DONE, cycles=cached.cycles,
                           ipc=cached.ipc, cached=True)
            return {"ok": True, "op": "submit", "id": job_id,
                    "state": DONE, "cached": True,
                    "cycles": cached.cycles, "ipc": cached.ipc}
        if len(self.queue) >= self.queue.depth:
            self._unprobe(fingerprint, probe)
            return self._shed(job_id, "queue-full",
                              retry_after=1.0, depth=self.queue.depth)
        ordinal = self.table.next_ordinal
        self.table.append("submit", id=job_id, tenant=tenant,
                          fingerprint=fingerprint, ordinal=ordinal,
                          job=frame.get("job"))
        self._mark_probe(fingerprint, job_id, probe)
        self.queue.push(tenant, job_id)
        self._kick.set()
        return {"ok": True, "op": "submit", "id": job_id, "state": QUEUED,
                "ordinal": ordinal}

    def _unprobe(self, fingerprint: str, probe: bool) -> None:
        """A granted half-open probe whose submission was shed anyway:
        give the slot back so the next submission can probe instead."""
        if probe:
            self.breaker.probing.discard(fingerprint)

    def _mark_probe(self, fingerprint: str, job_id: str,
                    probe: bool) -> None:
        if probe:
            self._probes[fingerprint] = job_id
            self.event("breaker.half_open", fingerprint=fingerprint[:12],
                       id=job_id)

    def _shed(self, job_id: str, reason: str,
              retry_after: float | None, **extra: Any) -> dict[str, Any]:
        self.shed_count += 1
        self.event("admission.shed", id=job_id, reason=reason, **extra)
        response = {"ok": True, "op": "submit", "id": job_id,
                    "state": SHED, "accepted": False, "reason": reason}
        if retry_after is not None:
            response["retry_after"] = round(retry_after, 3)
        return response

    # -- status / result / watch -------------------------------------- #
    def _op_status(self) -> dict[str, Any]:
        healthy = not self.draining and (self.cluster is None
                                         or self.cluster.has_quorum())
        return {
            "ok": True, "op": "status", "version": PROTOCOL_VERSION,
            "healthy": healthy, "draining": self.draining,
            "uptime": round(time.monotonic() - self.started, 3),
            "pid": os.getpid(),
            "jobs": self.table.counts(), "queued": len(self.queue),
            "queue_depth": self.queue.depth,
            "inflight": self._inflight, "dispatched": self.dispatched,
            "workers": self.workers,
            "workers_detail": self.supervisor.health(),
            "respawns": self.supervisor.respawns,
            "wedges": self.supervisor.wedges,
            "breaker_open": self.breaker.open_count(),
            "breaker": {
                "threshold": self.breaker.threshold,
                "cooldown": self.breaker.cooldown,
                "open": [fp[:12]
                         for fp in self.breaker.open_fingerprints()],
                "half_open": [fp[:12]
                              for fp in sorted(self.breaker.probing)],
            },
            "shed": self.shed_count,
            "journal_appends": self.table.journal.appends,
            "journal_append_errors": self.table.journal.append_errors,
            "cluster": (self.cluster.view()
                        if self.cluster is not None else None),
        }

    def _op_result(self, frame: dict[str, Any]) -> dict[str, Any]:
        job = self.table.jobs.get(frame.get("id") or "")
        if job is None:
            if self.cluster is not None:
                remote = self.cluster.remote_lookup(frame.get("id") or "")
                if remote is not None:
                    return {"ok": True, "op": "result", "id": remote["id"],
                            "state": remote.get("state") or QUEUED,
                            "cycles": remote["cycles"],
                            "ipc": remote["ipc"],
                            "error": remote["error"],
                            "remote": remote["owner"]}
            return error_response("result",
                                  f"unknown job id {frame.get('id')!r}")
        response = {"ok": True, "op": "result", "id": job.id,
                    "state": job.public_state(), "cycles": job.cycles,
                    "ipc": job.ipc, "error": job.error}
        if job.state == DONE:
            result = self.cache.get(job.fingerprint)
            if result is not None:
                response["result"] = result.to_dict()
        return response

    async def _op_watch(self, frame: dict[str, Any],
                        writer: asyncio.StreamWriter) -> None:
        """Stream terminal events for the requested ids, then done."""
        ids = frame.get("ids")
        if not isinstance(ids, list) or not all(isinstance(i, str)
                                                for i in ids):
            writer.write(encode_frame(error_response(
                "watch", "watch needs a list of string ids")))
            await writer.drain()
            return
        waiting = set(ids)
        queue: asyncio.Queue = asyncio.Queue()
        for job_id in list(waiting):
            job = self.table.jobs.get(job_id)
            if job is None:
                if self.cluster is not None:
                    # Clustered: the id may live on (or arrive at) a
                    # peer.  Answer a known remote terminal now; keep
                    # waiting otherwise — gossip folds remote terminals
                    # through notify_watchers.
                    remote = self.cluster.remote_lookup(job_id)
                    if remote is not None \
                            and remote.get("state") in TERMINAL:
                        writer.write(encode_frame(
                            {"event": "terminal", "id": job_id,
                             "state": remote["state"],
                             "cycles": remote["cycles"],
                             "ipc": remote["ipc"],
                             "error": remote["error"]}))
                        waiting.discard(job_id)
                    continue
                writer.write(encode_frame(
                    {"event": "terminal", "id": job_id, "state": FAILED,
                     "error": "unknown job id", "cycles": None,
                     "ipc": None}))
                waiting.discard(job_id)
            elif job.state in TERMINAL:
                writer.write(encode_frame(
                    {"event": "terminal", "id": job_id, "state": job.state,
                     "cycles": job.cycles, "ipc": job.ipc,
                     "error": job.error}))
                waiting.discard(job_id)
        watcher = (waiting, queue)
        self._watchers.append(watcher)
        try:
            await writer.drain()
            while waiting:
                frame_out = await queue.get()
                waiting.discard(frame_out["id"])
                writer.write(encode_frame(frame_out))
                await writer.drain()
            writer.write(encode_frame({"ok": True, "op": "watch",
                                       "done": True}))
            await writer.drain()
        except (OSError, ConnectionError):
            pass
        finally:
            self._watchers.remove(watcher)


# --------------------------------------------------------------------------- #
# CLI entry point: repro-serve
# --------------------------------------------------------------------------- #

def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Always-on simulation scheduler daemon (NDJSON over "
                    "a unix socket or TCP; see docs/ROBUSTNESS.md).")
    parser.add_argument("--state-dir", default=DEFAULT_STATE_DIR,
                        help="durable queue state: journal, events, "
                             f"snapshot, socket (default {DEFAULT_STATE_DIR})")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="unix socket path (default "
                             f"STATE_DIR/{SOCKET_NAME})")
    parser.add_argument("--host", default=None,
                        help="serve TCP on this host instead of the socket")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (with --host)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default .repro-cache)")
    parser.add_argument("--workers", type=int, default=2,
                        help="supervised worker processes (default 2)")
    parser.add_argument("--queue-depth", type=int,
                        default=DEFAULT_QUEUE_DEPTH,
                        help="admitted-job bound before load shedding "
                             f"(default {DEFAULT_QUEUE_DEPTH})")
    parser.add_argument("--rate", type=float, default=DEFAULT_RATE,
                        help="per-tenant submissions/second "
                             f"(default {DEFAULT_RATE:g})")
    parser.add_argument("--burst", type=float, default=DEFAULT_BURST,
                        help=f"per-tenant burst (default {DEFAULT_BURST:g})")
    parser.add_argument("--breaker-threshold", type=int,
                        default=DEFAULT_BREAKER_THRESHOLD,
                        help="worker crashes before a fingerprint is "
                             "quarantined "
                             f"(default {DEFAULT_BREAKER_THRESHOLD})")
    parser.add_argument("--breaker-cooldown", type=float,
                        default=DEFAULT_BREAKER_COOLDOWN,
                        help="seconds before an open circuit admits one "
                             "half-open probe; 0 = quarantine forever "
                             f"(default {DEFAULT_BREAKER_COOLDOWN:g})")
    parser.add_argument("--cluster", default=None, metavar="ADDRS",
                        help="comma-separated addresses of the whole "
                             "fleet (unix socket paths or host:port), "
                             "the same ordered list on every member")
    parser.add_argument("--advertise", default=None, metavar="ADDR",
                        help="this daemon's own address within --cluster")
    parser.add_argument("--gossip-interval", type=float,
                        default=DEFAULT_GOSSIP_INTERVAL,
                        help="seconds between peer heartbeat rounds "
                             f"(default {DEFAULT_GOSSIP_INTERVAL:g})")
    parser.add_argument("--peer-ttl", type=float, default=DEFAULT_PEER_TTL,
                        help="peer silence beyond this is suspicion, "
                             "beyond twice this is death "
                             f"(default {DEFAULT_PEER_TTL:g})")
    parser.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                        help="in-band transient retries per job "
                             f"(default {DEFAULT_RETRIES})")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job wall-clock deadline in seconds")
    parser.add_argument("--hb-timeout", type=float,
                        default=DEFAULT_HB_TIMEOUT,
                        help="watchdog: seconds of worker silence before "
                             f"a kill+respawn (default {DEFAULT_HB_TIMEOUT:g})")
    parser.add_argument("--drain-grace", type=float,
                        default=DEFAULT_DRAIN_GRACE,
                        help="seconds a drain waits for in-flight jobs "
                             f"(default {DEFAULT_DRAIN_GRACE:g})")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write the incarnation's scheduling events "
                             "as a Chrome trace on exit")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="service fault injection spec (tests/CI)")
    args = parser.parse_args(argv)
    if args.host is not None and not args.port:
        parser.error("--host needs --port")
    members = None
    if args.cluster:
        members = [addr.strip() for addr in args.cluster.split(",")
                   if addr.strip()]
        if args.advertise is None:
            parser.error("--cluster needs --advertise")
        if args.advertise not in members:
            parser.error(f"--advertise {args.advertise!r} is not in "
                         f"--cluster")
    faults = None
    try:
        if args.faults:
            faults = FaultPlan.parse(args.faults)
        else:
            faults = FaultPlan.from_env()
    except FaultSpecError as error:
        parser.error(str(error))
    daemon = SchedulerDaemon(
        state_dir=args.state_dir, socket_path=args.socket,
        host=args.host, port=args.port or None,
        cache_dir=args.cache_dir, workers=args.workers,
        queue_depth=args.queue_depth, rate=args.rate, burst=args.burst,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown or None,
        retries=args.retries,
        timeout=args.timeout, hb_timeout=args.hb_timeout,
        drain_grace=args.drain_grace, trace=args.trace,
        cluster_members=members, advertise=args.advertise,
        gossip_interval=args.gossip_interval, peer_ttl=args.peer_ttl,
        faults=faults)
    try:
        return asyncio.run(daemon.serve())
    except KeyboardInterrupt:   # pragma: no cover - signal path preferred
        return EXIT_OK
    except OSError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return EXIT_PARTIAL


if __name__ == "__main__":   # pragma: no cover - subprocess entry
    raise SystemExit(main())
