"""Service worker: one supervised process of the ``repro-serve`` pool.

``python -m repro.service.worker`` speaks newline-delimited JSON on
stdin/stdout to exactly one parent (the supervisor):

* in  — ``{"id", "ordinal", "job": SimJob payload, "timeout"}`` requests
  (one job each) and ``{"op": "exit"}`` to quit cleanly;
* out — ``{"type": "ready"}`` once at start, ``{"type": "hb"}``
  heartbeats every ``--hb-interval`` seconds *while a job runs*, and one
  ``{"type": "outcome", ...}`` per job.

Jobs run through the shared dispatch core
(:func:`repro.harness.engine.execute_tagged`), so fault injection,
timeout typing and transient classification match the one-shot batch
engine exactly; the batch-grade faults (``fail:K``/``flaky:K``/
``kill:K``...) address the job's *dispatch ordinal* here.  Successful
results are written to the shared result cache by this process — the
daemon never holds results, only terminal states — so a worker killed
after caching but before its outcome line costs one redundant (cached)
re-dispatch, never a lost or doubled result.

The ``worker-wedge:K`` service fault makes this process go silent at
ordinal K: heartbeats stop and the job never returns.  The supervisor's
watchdog must kill and respawn us — that is the poison-job drill.
Stdout is line-buffered and flushed per frame; anything that would
normally print (warnings, tracebacks) goes to stderr so the protocol
stream stays clean.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Any, Sequence

from ..harness.cache import ResultCache
from ..harness.engine import execute_tagged
from ..harness.faults import FaultPlan
from ..harness.jobs import JobError, SimJob

#: Default seconds between heartbeat lines while a job runs.
DEFAULT_HB_INTERVAL = 0.5


def _emit(frame: dict[str, Any], out=None) -> None:
    out = out or sys.stdout
    out.write(json.dumps(frame, sort_keys=True, separators=(",", ":"))
              + "\n")
    out.flush()


class _Heartbeat(threading.Thread):
    """Emits heartbeat frames while the main thread executes a job."""

    def __init__(self, interval: float, lock: threading.Lock) -> None:
        super().__init__(name="service-worker-heartbeat", daemon=True)
        self.interval = interval
        self.lock = lock
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            with self.lock:
                _emit({"type": "hb"})

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def _wedge() -> None:   # pragma: no cover - killed by the supervisor
    """Go silent (the injected poison-job behaviour).

    Silent towards the *supervisor*: no heartbeats, no outcome, so the
    watchdog has to kill us.  But not a leak — if the daemon itself dies
    (SIGKILL in a chaos drill) we are reparented, notice, and exit, so
    wedged workers never outlive their service.
    """
    parent = os.getppid()
    while os.getppid() == parent:
        time.sleep(0.5)
    raise SystemExit(1)


def run_one(request: dict[str, Any], cache: ResultCache | None,
            faults: FaultPlan | None) -> dict[str, Any]:
    """Execute one job request; return its outcome frame."""
    job_id = request.get("id", "?")
    ordinal = int(request.get("ordinal", 0))
    try:
        job = SimJob.from_payload(request["job"])
    except (JobError, KeyError, TypeError, ValueError) as error:
        return {"type": "outcome", "id": job_id, "tag": "err",
                "error": f"{type(error).__name__}: {error}",
                "transient": False}
    fingerprint = job.fingerprint()
    started = time.monotonic()
    tagged = execute_tagged(ordinal, job, faults,
                            request.get("timeout"), False,
                            request.get("sanitize"))
    duration = time.monotonic() - started
    tag = tagged[0]
    outcome: dict[str, Any] = {"type": "outcome", "id": job_id, "tag": tag,
                               "fingerprint": fingerprint,
                               "duration": round(duration, 4)}
    if tag == "ok":
        result = tagged[2]
        cached = cache.put(fingerprint, result) if cache is not None else False
        outcome.update(cycles=result.cycles, ipc=result.ipc, cached=cached)
    elif tag == "timeout":
        outcome.update(error=tagged[2], progress=tagged[3], transient=False)
    else:
        _, _, message, traceback_text, transient = tagged
        outcome.update(error=message, transient=bool(transient))
        if traceback_text:
            print(traceback_text, file=sys.stderr)
    return outcome


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="repro-serve pool worker (supervisor use only)")
    parser.add_argument("--cache-dir", default=None,
                        help="shared result cache directory")
    parser.add_argument("--hb-interval", type=float,
                        default=DEFAULT_HB_INTERVAL,
                        help="seconds between heartbeat frames "
                             f"(default {DEFAULT_HB_INTERVAL:g})")
    args = parser.parse_args(argv)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    faults = FaultPlan.from_env()
    emit_lock = threading.Lock()
    with emit_lock:
        _emit({"type": "ready"})
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError:
            with emit_lock:
                _emit({"type": "outcome", "id": "?", "tag": "err",
                       "error": "unparseable request", "transient": False})
            continue
        if request.get("op") == "exit":
            return 0
        ordinal = int(request.get("ordinal", 0))
        if faults is not None and faults.service_worker_wedge(ordinal):
            # The poison job: stop talking, never finish.  The watchdog
            # upstairs kills us; the circuit breaker does the rest.
            _wedge()
        heart = _Heartbeat(args.hb_interval, emit_lock)
        heart.start()
        try:
            outcome = run_one(request, cache, faults)
        finally:
            heart.stop()
        with emit_lock:
            _emit(outcome)
    return 0


if __name__ == "__main__":   # pragma: no cover - subprocess entry
    raise SystemExit(main())
