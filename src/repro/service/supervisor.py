"""Supervised worker pool for the scheduler daemon.

The supervision tree (docs/ROBUSTNESS.md) in one module: the daemon
owns one :class:`Supervisor`; the supervisor owns ``size`` worker
processes (:mod:`repro.service.worker`), each speaking NDJSON over its
own stdin/stdout pipe pair.  Liveness is heartbeat-based: while a job
runs, a healthy worker emits a frame at least every heartbeat interval,
so *any* read silence longer than ``hb_timeout`` means the worker is
wedged (a poison job, a native hang) — the watchdog kills it, respawns
a replacement with exponential backoff
(:class:`repro.harness.engine.Backoff`) and reports the job as a
*crash* so the daemon's circuit breaker can count it.  A worker that
simply dies (OOM-kill, injected ``kill:K``) is detected the same tick
by EOF and handled identically minus the kill.

Environments that cannot spawn subprocesses degrade to an in-thread
inline worker running the same dispatch core — mirroring the batch
engine's pool-to-inline fallback — where a wedge fault degrades to a
transient crash (the thread cannot be killed) exactly like the inline
``kill`` fault does.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..harness.engine import Backoff, execute_tagged
from ..harness.faults import FaultPlan, InjectedTransientFault
from ..harness.jobs import JobError, SimJob

#: Read-silence watchdog: a running worker heartbeats every ~0.5s, so
#: several missed beats in a row mean wedged, not slow.
DEFAULT_HB_TIMEOUT = 5.0

#: How long to wait for a freshly spawned worker's ready frame.
_SPAWN_TIMEOUT = 30.0

#: Event callback: ``on_event(kind, **payload)``.
EventFn = Callable[..., None]


@dataclass
class Dispatch:
    """What happened to one dispatched job, from the daemon's view.

    ``tag`` mirrors the engine's tagged outcomes (``ok`` / ``timeout`` /
    ``err``); ``crashed`` marks outcomes where the *worker* died or
    wedged rather than the job failing in-band — those feed the circuit
    breaker, ordinary errors do not.
    """

    id: str
    tag: str
    fingerprint: str | None = None
    cycles: int | None = None
    ipc: float | None = None
    error: str | None = None
    transient: bool = False
    crashed: bool = False
    wedged: bool = False
    cached: bool = False
    duration: float = 0.0


class _Worker:
    """One pool slot: a subprocess, or the inline-thread fallback."""

    def __init__(self, proc: asyncio.subprocess.Process | None,
                 slot: int) -> None:
        self.proc = proc
        self.slot = slot
        self.jobs = 0

    @property
    def inline(self) -> bool:
        return self.proc is None

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    async def kill(self) -> None:
        if self.proc is None:
            return
        try:
            self.proc.kill()
        except ProcessLookupError:
            pass
        try:
            await asyncio.wait_for(self.proc.wait(), timeout=5.0)
        except asyncio.TimeoutError:   # pragma: no cover - kernel lag
            pass


class Supervisor:
    """Spawn, health-check and replace the daemon's worker processes."""

    def __init__(self, size: int, *, cache_dir: str | Path | None,
                 hb_timeout: float = DEFAULT_HB_TIMEOUT,
                 backoff: Backoff | None = None,
                 faults: FaultPlan | None = None,
                 on_event: EventFn | None = None) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.hb_timeout = hb_timeout
        self.backoff = backoff or Backoff()
        self.faults = faults
        self.on_event = on_event or (lambda kind, **payload: None)
        self.respawns = 0
        self.wedges = 0
        self._consecutive_failures = 0
        self._idle: asyncio.Queue[_Worker] = asyncio.Queue()
        self._workers: list[_Worker] = []
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        for slot in range(self.size):
            worker = await self._spawn(slot)
            self._workers.append(worker)
            self._idle.put_nowait(worker)

    def health(self) -> list[dict[str, Any]]:
        """Per-slot worker health for ``status`` responses: pid (None
        for the inline fallback), liveness and jobs served."""
        out = []
        for worker in self._workers:
            alive = worker.proc is not None \
                and worker.proc.returncode is None
            out.append({"slot": worker.slot, "pid": worker.pid,
                        "inline": worker.inline,
                        "alive": alive or worker.inline,
                        "jobs": worker.jobs})
        return out

    async def close(self) -> None:
        self._closed = True
        for worker in self._workers:
            if worker.proc is None or worker.proc.returncode is not None:
                continue
            try:
                worker.proc.stdin.write(b'{"op":"exit"}\n')
                await worker.proc.stdin.drain()
            except (OSError, ConnectionError):
                pass
            try:
                await asyncio.wait_for(worker.proc.wait(), timeout=2.0)
            except asyncio.TimeoutError:
                await worker.kill()

    async def _spawn(self, slot: int) -> _Worker:
        """A live worker for ``slot`` — subprocess, or inline fallback."""
        command = [sys.executable, "-m", "repro.service.worker",
                   "--hb-interval", f"{max(self.hb_timeout / 6.0, 0.1):g}"]
        if self.cache_dir:
            command += ["--cache-dir", self.cache_dir]
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        try:
            proc = await asyncio.create_subprocess_exec(
                *command, env=env,
                stdin=asyncio.subprocess.PIPE,
                stdout=asyncio.subprocess.PIPE,
                stderr=asyncio.subprocess.DEVNULL)
            line = await asyncio.wait_for(proc.stdout.readline(),
                                          timeout=_SPAWN_TIMEOUT)
            if json.loads(line.decode("utf-8")).get("type") != "ready":
                raise OSError("worker did not report ready")
        except (OSError, ValueError, NotImplementedError,
                asyncio.TimeoutError):
            self.on_event("worker.inline", slot=slot)
            return _Worker(None, slot)
        return _Worker(proc, slot)

    async def _replace(self, worker: _Worker, reason: str) -> None:
        """Kill a sick worker and respawn its slot, with backoff."""
        await worker.kill()
        self.respawns += 1
        self._consecutive_failures += 1
        delay = self.backoff.delay(self._consecutive_failures)
        self.on_event("worker.respawn", slot=worker.slot, reason=reason,
                      delay=round(delay, 3))
        await asyncio.sleep(delay)
        replacement = await self._spawn(worker.slot)
        self._workers[self._workers.index(worker)] = replacement
        self._idle.put_nowait(replacement)

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def run_job(self, request: dict[str, Any]) -> Dispatch:
        """Dispatch one job request to an idle worker; never raises.

        Blocks until a worker is free (the pool size is the concurrency
        bound).  Worker death and wedging come back as transient
        ``crashed`` dispatches; the worker slot is respawned before this
        returns, so the pool never shrinks.
        """
        worker = await self._idle.get()
        if worker.inline:
            dispatch = await self._run_inline(request)
            self._idle.put_nowait(worker)
            return dispatch
        try:
            dispatch = await self._drive(worker, request)
        except asyncio.CancelledError:
            self._idle.put_nowait(worker)
            raise
        if dispatch.crashed:
            reason = "wedged" if dispatch.wedged else "died"
            if dispatch.wedged:
                self.wedges += 1
            await self._replace(worker, reason)
        else:
            self._consecutive_failures = 0
            worker.jobs += 1
            self._idle.put_nowait(worker)
        return dispatch

    async def _drive(self, worker: _Worker,
                     request: dict[str, Any]) -> Dispatch:
        """One request/outcome exchange with heartbeat watchdogging."""
        job_id = request.get("id", "?")
        proc = worker.proc
        line = (json.dumps(request, sort_keys=True, separators=(",", ":"))
                + "\n").encode("utf-8")
        try:
            proc.stdin.write(line)
            await proc.stdin.drain()
        except (OSError, ConnectionError) as error:
            return Dispatch(id=job_id, tag="err", transient=True,
                            crashed=True,
                            error=f"worker pipe broke: {error}")
        while True:
            try:
                raw = await asyncio.wait_for(proc.stdout.readline(),
                                             timeout=self.hb_timeout)
            except asyncio.TimeoutError:
                return Dispatch(id=job_id, tag="err", transient=True,
                                crashed=True, wedged=True,
                                error=f"worker wedged (silent for "
                                      f"{self.hb_timeout:g}s)")
            if not raw:
                code = proc.returncode
                return Dispatch(id=job_id, tag="err", transient=True,
                                crashed=True,
                                error=f"worker died (exit {code})")
            try:
                frame = json.loads(raw.decode("utf-8"))
            except ValueError:
                continue   # a stray partial line around a kill
            kind = frame.get("type")
            if kind == "hb":
                continue
            if kind == "outcome":
                return Dispatch(
                    id=frame.get("id", job_id), tag=frame.get("tag", "err"),
                    fingerprint=frame.get("fingerprint"),
                    cycles=frame.get("cycles"), ipc=frame.get("ipc"),
                    error=frame.get("error"),
                    transient=bool(frame.get("transient")),
                    cached=bool(frame.get("cached")),
                    duration=float(frame.get("duration") or 0.0))

    async def _run_inline(self, request: dict[str, Any]) -> Dispatch:
        """The no-subprocess fallback: same core, this process's thread.

        A ``worker-wedge`` fault cannot wedge a thread we could never
        kill, so it degrades to a transient crash — the same contract as
        the inline ``kill`` fault — which still feeds the breaker.
        """
        job_id = request.get("id", "?")
        ordinal = int(request.get("ordinal", 0))
        if self.faults is not None \
                and self.faults.service_worker_wedge(ordinal):
            self.wedges += 1
            return Dispatch(id=job_id, tag="err", transient=True,
                            crashed=True, wedged=True,
                            error="injected worker wedge (inline: "
                                  "degraded to transient crash)")
        try:
            job = SimJob.from_payload(request["job"])
        except (JobError, KeyError, TypeError, ValueError) as error:
            return Dispatch(id=job_id, tag="err",
                            error=f"{type(error).__name__}: {error}")
        loop = asyncio.get_running_loop()
        try:
            tagged = await loop.run_in_executor(
                None, lambda: execute_tagged(
                    ordinal, job, self.faults, request.get("timeout"),
                    True, request.get("sanitize")))
        except InjectedTransientFault as error:   # pragma: no cover
            return Dispatch(id=job_id, tag="err", transient=True,
                            crashed=True, error=str(error))
        tag = tagged[0]
        fingerprint = job.fingerprint()
        if tag == "ok":
            result = tagged[2]
            cached = False
            if self.cache_dir:
                from ..harness.cache import ResultCache
                cached = ResultCache(self.cache_dir).put(fingerprint, result)
            return Dispatch(id=job_id, tag="ok", fingerprint=fingerprint,
                            cycles=result.cycles, ipc=result.ipc,
                            cached=cached)
        if tag == "timeout":
            return Dispatch(id=job_id, tag="timeout",
                            fingerprint=fingerprint, error=tagged[2])
        _, _, message, _, transient = tagged
        return Dispatch(id=job_id, tag="err", fingerprint=fingerprint,
                        error=message, transient=bool(transient))
