"""``repro-submit``: the thin client for the scheduler daemon.

:class:`ServiceClient` is a small synchronous NDJSON peer: connect
(with exponential-backoff retries — the daemon may still be booting or
mid-restart), send one frame per request, read one response.  A dropped
connection (daemon restart, injected ``socket-drop``) is survivable by
construction: job ids are idempotency keys, so the client just
reconnects and resends.  Shed responses are retried politely after the
daemon's ``retry_after`` hint, up to a bounded number of attempts.

The CLI compiles a design file *client-side* — the same
:func:`repro.design.files.load_design` / :class:`DesignEnv` path as
``repro-exp --design`` — and submits one job per cell with the
deterministic id :func:`repro.service.protocol.job_id`, so two
concurrent ``repro-submit`` runs of one design converge on the same
jobs and exactly one execution each.  It then watches for terminal
states, prints the familiar label/cycles/ipc table and exits with the
uniform codes (:mod:`repro.harness.exit_codes`): 0 all done, 1 partial
(failed or still pending), 2 usage, 3 exhausted/quarantined, 4 shed.

Against a federated fleet (``--peers A,B,C``) the client holds the full
address list and rotates through it: a connection failure or drop moves
on to the next peer instead of hammering the dead one, and the backoff
sleep only happens after a full fruitless rotation.  Job ids being
idempotency keys makes this failover transparent — whichever daemon
answers either owns the job, forwards it, or reports the known state.
Reconnect backoff carries a deterministic per-client jitter
(:func:`repro.design.campaign.worker_ttl_jitter` over a host+pid key,
mirroring the campaign lease-TTL jitter) so a fleet of clients stampeding
after a daemon restart decorrelates without losing reproducibility.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
from pathlib import Path
from typing import Any, Callable, Sequence

from ..design.campaign import worker_ttl_jitter
from ..design.env import DesignEnv
from ..design.files import load_design
from ..harness.engine import Backoff
from ..harness.exit_codes import (EXIT_EXHAUSTED, EXIT_OK, EXIT_PARTIAL,
                                  EXIT_SHED)
from ..harness.faults import FaultPlan, FaultSpecError
from .daemon import DEFAULT_STATE_DIR, SOCKET_NAME
from .protocol import (DONE, FAILED, QUARANTINED, SHED, ProtocolError,
                       decode_frame, encode_frame, job_id)

#: Connection attempts before giving up on a dead daemon.
DEFAULT_CONNECT_ATTEMPTS = 6

#: Shed-retry attempts per submission before reporting the job shed.
DEFAULT_SHED_RETRIES = 20

#: Maximum fraction added to each backoff delay by per-client jitter
#: (same knob value as the campaign lease-TTL jitter).
BACKOFF_JITTER_FRAC = 0.25


class ServiceError(RuntimeError):
    """The daemon is unreachable or answered with a protocol error."""


def default_jitter_key() -> str:
    """Host + pid: decorrelates concurrent clients deterministically."""
    return f"{socket.gethostname()}-{os.getpid()}"


class ServiceClient:
    """Synchronous NDJSON client over a unix socket or TCP.

    ``peers`` (a list of ``host:port`` or unix-socket-path addresses)
    turns the client into a fleet client: every connection attempt
    targets the current peer, and any failure rotates to the next one
    before the jittered backoff sleep.
    """

    def __init__(self, socket_path: str | Path | None = None, *,
                 host: str | None = None, port: int | None = None,
                 peers: Sequence[str] | None = None,
                 timeout: float = 120.0,
                 connect_attempts: int = DEFAULT_CONNECT_ATTEMPTS,
                 backoff: Backoff | None = None,
                 jitter_key: str | None = None,
                 faults: FaultPlan | None = None) -> None:
        self.peers = [str(p) for p in peers] if peers else []
        if not self.peers and host is None and socket_path is None:
            socket_path = Path(DEFAULT_STATE_DIR) / SOCKET_NAME
        self.socket_path = Path(socket_path) if socket_path else None
        self.host, self.port = host, port
        self.timeout = timeout
        self.connect_attempts = connect_attempts
        self.backoff = backoff or Backoff(base=0.25, cap=5.0)
        # Deterministic per-client jitter factor in [1, 1 + FRAC): the
        # same client always backs off identically (reproducible runs),
        # different clients spread out instead of stampeding in lockstep.
        self.jitter = 1.0 + BACKOFF_JITTER_FRAC * worker_ttl_jitter(
            jitter_key if jitter_key is not None else default_jitter_key())
        self.faults = faults
        self.frames_sent = 0
        self.reconnects = 0
        self.failovers = 0
        self._peer_index = 0
        self._sock: socket.socket | None = None
        self._file = None

    # -- connection ---------------------------------------------------- #
    def _delay(self, attempt: int) -> float:
        """Backoff delay with the client's deterministic jitter applied."""
        return self.backoff.delay(attempt) * self.jitter

    def _target(self) -> tuple[str | None, int | None, str | None]:
        """Current (host, port, socket_path) to dial."""
        if self.peers:
            address = self.peers[self._peer_index % len(self.peers)]
            if "/" not in address and address.count(":") == 1:
                node, _, port = address.partition(":")
                if port.isdigit():
                    return node, int(port), None
            return None, None, address
        return self.host, self.port, (str(self.socket_path)
                                      if self.socket_path else None)

    def _rotate(self) -> None:
        """Next peer, if there is more than one to rotate to."""
        if len(self.peers) > 1:
            self._peer_index = (self._peer_index + 1) % len(self.peers)
            self.failovers += 1

    def connect(self) -> None:
        if self._sock is not None:
            return
        last: Exception | None = None
        rotation = max(len(self.peers), 1)
        for attempt in range(1, self.connect_attempts + 1):
            for _ in range(rotation):
                host, port, path = self._target()
                try:
                    if host is not None:
                        sock = socket.create_connection(
                            (host, port), timeout=self.timeout)
                    else:
                        sock = socket.socket(socket.AF_UNIX,
                                             socket.SOCK_STREAM)
                        sock.settimeout(self.timeout)
                        sock.connect(str(path))
                except OSError as error:
                    last = error
                    self._rotate()
                    continue
                self._sock = sock
                self._file = sock.makefile("rb")
                return
            # Every peer refused this round: sleep, then rotate again.
            if attempt < self.connect_attempts:
                time.sleep(self._delay(attempt))
        if self.peers:
            where = ",".join(self.peers)
        elif self.host:
            where = f"{self.host}:{self.port}"
        else:
            where = str(self.socket_path)
        raise ServiceError(f"cannot reach repro-serve at {where} after "
                           f"{self.connect_attempts} attempt(s): {last}")

    def close(self) -> None:
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._file = None

    def _drop(self) -> None:
        self.close()
        self.reconnects += 1
        # A dropped daemon may be restarting or dead; try its peer next.
        self._rotate()

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- framing ------------------------------------------------------- #
    def _send(self, frame: dict[str, Any]) -> None:
        data = encode_frame(frame)
        ordinal = self.frames_sent
        self.frames_sent += 1
        stall = (self.faults.service_slow_client(ordinal)
                 if self.faults is not None else None)
        if stall is not None:
            # The injected slow client: half a frame, a nap, the rest.
            # The daemon must keep serving other connections meanwhile.
            half = max(len(data) // 2, 1)
            self._sock.sendall(data[:half])
            time.sleep(stall)
            self._sock.sendall(data[half:])
            return
        self._sock.sendall(data)

    def _read(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return decode_frame(line)

    def request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """One request/response exchange, reconnecting on a dropped
        socket (safe: every operation is idempotent by job id)."""
        for attempt in range(1, self.connect_attempts + 1):
            self.connect()
            try:
                self._send(frame)
                return self._read()
            except (ConnectionError, OSError, ProtocolError):
                self._drop()
                if attempt >= self.connect_attempts:
                    raise
                time.sleep(self._delay(attempt))
        raise ServiceError("unreachable")   # pragma: no cover

    # -- operations ---------------------------------------------------- #
    def status(self) -> dict[str, Any]:
        return self.request({"op": "status"})

    def drain(self) -> dict[str, Any]:
        return self.request({"op": "drain"})

    def result(self, id: str) -> dict[str, Any]:
        return self.request({"op": "result", "id": id})

    def submit(self, id: str, job_payload: dict[str, Any], *,
               tenant: str = "-", pin: bool = False,
               shed_retries: int = DEFAULT_SHED_RETRIES) -> dict[str, Any]:
        """Submit one job, riding out shed responses with backoff.

        Returns the final submit response; its ``state`` is ``shed``
        only after ``shed_retries`` polite retries all bounced.  With
        multiple peers a shed (overloaded or quorum-less daemon) also
        rotates: the retry lands on the next peer, which may accept.
        ``pin`` asks the contacted daemon to own the job itself instead
        of routing it to its rendezvous owner.
        """
        frame = {"op": "submit", "id": id, "tenant": tenant,
                 "job": job_payload}
        if pin:
            frame["pin"] = True
        response = self.request(frame)
        attempt = 0
        while response.get("state") == SHED and attempt < shed_retries:
            attempt += 1
            if not pin and len(self.peers) > 1:
                # Not a drop — the daemon is alive but refusing — so
                # rotate without counting a reconnect.
                self.close()
                self._rotate()
            hint = response.get("retry_after")
            time.sleep(min(float(hint) if hint is not None
                           else self._delay(attempt), 5.0))
            response = self.request(frame)
        return response

    def watch(self, ids: Sequence[str],
              on_event: Callable[[dict[str, Any]], None] | None = None,
              ) -> dict[str, dict[str, Any]]:
        """Block until every id is terminal; return id -> terminal frame.

        Reconnects (and re-issues the watch for the remainder) if the
        stream drops mid-flight.
        """
        terminal: dict[str, dict[str, Any]] = {}
        remaining = [i for i in ids if i not in terminal]
        attempt = 0
        while remaining:
            self.connect()
            try:
                self._send({"op": "watch", "ids": remaining})
                while True:
                    frame = self._read()
                    if frame.get("event") == "terminal":
                        terminal[frame["id"]] = frame
                        if on_event is not None:
                            on_event(frame)
                    elif frame.get("done") or not frame.get("ok", True):
                        break
            except (ConnectionError, OSError, ProtocolError):
                self._drop()
                attempt += 1
                if attempt >= self.connect_attempts:
                    raise
                time.sleep(self._delay(attempt))
            remaining = [i for i in ids if i not in terminal]
        return terminal


# --------------------------------------------------------------------------- #
# CLI entry point: repro-submit
# --------------------------------------------------------------------------- #

def _design_env(overrides: dict, args) -> DesignEnv:
    kwargs: dict = {"scale": args.scale}
    kwargs.update(overrides)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.backend is not None:
        kwargs["backend"] = args.backend
    return DesignEnv(**kwargs)


def _exit_code(states: dict[str, str]) -> int:
    """The uniform verdict over one submission's final states."""
    values = list(states.values())
    if any(state == SHED for state in values):
        return EXIT_SHED
    if any(state == QUARANTINED for state in values):
        return EXIT_EXHAUSTED
    if any(state == FAILED for state in values):
        return EXIT_PARTIAL
    if all(state == DONE for state in values):
        return EXIT_OK
    return EXIT_PARTIAL


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-submit",
        description="Submit a design to a running repro-serve daemon "
                    "and wait for results.")
    parser.add_argument("design", nargs="?", default=None,
                        help="design file (TOML/JSON) to compile + submit")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="daemon unix socket (default "
                             f"{DEFAULT_STATE_DIR}/{SOCKET_NAME})")
    parser.add_argument("--host", default=None,
                        help="daemon TCP host (with --port)")
    parser.add_argument("--port", type=int, default=0, help="daemon TCP port")
    parser.add_argument("--peers", default=None, metavar="ADDRS",
                        help="comma-separated fleet addresses "
                             "(host:port or unix socket paths); the "
                             "client fails over across them")
    parser.add_argument("--pin", action="store_true",
                        help="pin jobs to the contacted daemon instead "
                             "of rendezvous routing")
    parser.add_argument("--tenant", default=None,
                        help="fair-share tenant name (default: user name)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="design environment scale (default 1.0)")
    parser.add_argument("--seed", type=int, default=None,
                        help="design environment seed override")
    parser.add_argument("--backend", default=None,
                        help="design environment backend override")
    parser.add_argument("--no-wait", action="store_true",
                        help="submit and exit without watching for results")
    parser.add_argument("--status", action="store_true",
                        help="print daemon health and exit")
    parser.add_argument("--drain", action="store_true",
                        help="ask the daemon to drain and exit")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="client-side fault injection (tests/CI)")
    args = parser.parse_args(argv)

    try:
        faults = (FaultPlan.parse(args.faults) if args.faults
                  else FaultPlan.from_env())
    except FaultSpecError as error:
        parser.error(str(error))
    if args.host is not None and not args.port:
        parser.error("--host needs --port")
    peers = ([p.strip() for p in args.peers.split(",") if p.strip()]
             if args.peers else None)
    if args.peers and not peers:
        parser.error("--peers needs at least one address")
    client = ServiceClient(args.socket, host=args.host,
                           port=args.port or None, peers=peers,
                           faults=faults)

    try:
        if args.status:
            status = client.status()
            for key in ("healthy", "draining", "uptime", "pid", "workers",
                        "queued", "inflight", "queue_depth", "jobs",
                        "breaker_open", "shed", "respawns", "wedges"):
                print(f"{key}: {status.get(key)}")
            breaker = status.get("breaker") or {}
            if breaker.get("open") or breaker.get("half_open"):
                print(f"breaker_detail: open={breaker.get('open')} "
                      f"half_open={breaker.get('half_open')} "
                      f"cooldown={breaker.get('cooldown')}")
            for worker in status.get("workers_detail") or []:
                print(f"worker[{worker.get('slot')}]: "
                      f"pid={worker.get('pid')} "
                      f"alive={worker.get('alive')} "
                      f"inline={worker.get('inline')} "
                      f"jobs={worker.get('jobs')}")
            cluster = status.get("cluster")
            if cluster:
                print(f"cluster: {cluster.get('advertise')} "
                      f"[{cluster.get('index')}/{cluster.get('size')}] "
                      f"quorum={cluster.get('quorum')} "
                      f"degraded={cluster.get('degraded')} "
                      f"rounds={cluster.get('rounds')} "
                      f"remote_jobs={cluster.get('remote_jobs')}")
                for peer in cluster.get("peers") or []:
                    print(f"peer[{peer.get('index')}]: "
                          f"{peer.get('addr')} state={peer.get('state')} "
                          f"misses={peer.get('misses')}")
            return EXIT_OK
        if args.drain:
            client.drain()
            print("drain requested")
            return EXIT_OK
        if args.design is None:
            parser.error("a design file is required "
                         "(or --status / --drain)")

        design, overrides = load_design(args.design)
        env = _design_env(overrides, args)
        digest = design.digest(env)
        cells = design.compile(env)
        tenant = args.tenant or os_user()
        print(f"{design.name}: submitting {len(cells)} cell(s) "
              f"as tenant {tenant!r} (digest {digest[:12]})")

        ids: list[str] = []
        labels: dict[str, str] = {}
        states: dict[str, str] = {}
        details: dict[str, dict[str, Any]] = {}
        for cell in cells:
            cid = job_id(digest, cell.index)
            ids.append(cid)
            labels[cid] = cell.label
            response = client.submit(cid, cell.job.to_payload(),
                                     tenant=tenant, pin=args.pin)
            if not response.get("ok"):
                raise ServiceError(response.get("error", "submit refused"))
            states[cid] = response.get("state", SHED)
            details[cid] = response
            if states[cid] == SHED:
                print(f"  shed: {cell.label} "
                      f"({response.get('reason')})", file=sys.stderr)

        if not args.no_wait:
            watchable = [cid for cid in ids
                         if states[cid] not in (SHED,)
                         and details[cid].get("accepted", True)]
            if watchable:
                for cid, frame in client.watch(watchable).items():
                    states[cid] = frame.get("state", FAILED)
                    details[cid] = frame

            width = max(len(label) for label in labels.values())
            for cid in ids:
                info = details[cid]
                label = labels[cid]
                if states[cid] == DONE:
                    print(f"{label:<{width}}  cycles={info.get('cycles')} "
                          f"ipc={info.get('ipc'):.4f}")
                else:
                    print(f"{label:<{width}}  {states[cid]}: "
                          f"{info.get('error') or info.get('reason') or ''}")

        done = sum(1 for s in states.values() if s == DONE)
        terminal_bad = sum(1 for s in states.values()
                           if s in (FAILED, QUARANTINED))
        shed = sum(1 for s in states.values() if s == SHED)
        pending = len(states) - done - terminal_bad - shed
        footer = [f"{done} done"]
        if terminal_bad:
            footer.append(f"{terminal_bad} failed/quarantined")
        if shed:
            footer.append(f"{shed} shed")
        if pending:
            footer.append(f"{pending} pending")
        print(f"[{', '.join(footer)}]", file=sys.stderr)
        return _exit_code(states)
    except ServiceError as error:
        print(f"repro-submit: {error}", file=sys.stderr)
        return EXIT_PARTIAL
    finally:
        client.close()


def os_user() -> str:
    import getpass
    try:
        return getpass.getuser()
    except (KeyError, OSError):   # pragma: no cover - no passwd entry
        return "-"


if __name__ == "__main__":   # pragma: no cover - subprocess entry
    raise SystemExit(main(sys.argv[1:]))
