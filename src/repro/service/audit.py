"""``repro-audit``: offline exactly-once auditing over service journals.

The scheduler daemon's journal (``journal.jsonl`` in its state dir) is
the durable truth about every job it accepted; in a federated fleet
(:mod:`repro.service.cluster`) each daemon has its own, plus replicated
``cluster-job`` / ``cluster-terminal`` / ``peer-terminal`` records
gossiped in from peers.  This module folds *all* of those journals into
one cluster-wide verdict, offline, with every daemon stopped — the same
post-hoc shape as campaign journal replay, one level up the stack.

The distinction that makes the audit honest: a job is **executed** on a
node only where that node journaled its own ``done`` / ``failed`` /
``quarantined`` record.  Replicated terminals (``cluster-terminal``) and
the fold of a peer finishing your job (``peer-terminal``) prove
*knowledge*, never execution, and are tracked separately — so a job
reclaimed from a dead daemon and re-run by a survivor shows exactly one
execution, on the survivor, no matter how widely the result was
gossiped.

Two strictness levels, matching the two chaos drills:

* **strict exactly-once** (single daemon): every accepted job has
  exactly one executed terminal record, full stop.
* **effectively-once** (cluster): every accepted job has at least one
  executed terminal somewhere, and all executed terminals *agree* —
  same state, and for ``done`` the same cycles/ipc.  Agreeing duplicates
  are counted and reported, not failed: a client taking over a
  presumed-dead owner's job races its reclaim by design, and the
  fingerprint cache guarantees both executions are bitwise-identical.

Run it standalone against one or more state dirs::

    repro-audit .repro-cluster-chaos/state-*
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..design.journal import replay_journal
from .protocol import DONE, TERMINAL

#: Journal record types that mark a *local* execution reaching terminal.
EXECUTED_KINDS = ("done", "failed", "quarantined")

#: Record types that replicate someone else's terminal (never execution).
REPLICA_KINDS = ("cluster-terminal", "peer-terminal")


@dataclass
class JobAudit:
    """Everything every journal said about one job id."""

    id: str
    #: State-dir names that journaled their own ``submit`` for this id.
    accepted_in: list[str] = field(default_factory=list)
    #: ``(dir, state, cycles, ipc)`` per locally-executed terminal record.
    executed: list[tuple[str, str, object, object]] = field(
        default_factory=list)
    #: ``(dir, record-type, state)`` per replicated terminal record.
    replicated: list[tuple[str, str, str]] = field(default_factory=list)
    #: Source daemons this id was reclaimed from (``adopted_from``).
    adopted_from: list[str] = field(default_factory=list)
    #: Dispatch ordinals journaled with each accept (fault anchoring).
    ordinals: list[object] = field(default_factory=list)

    @property
    def states(self) -> set[str]:
        return {state for _, state, _, _ in self.executed}

    @property
    def missing(self) -> bool:
        """Accepted somewhere, executed nowhere: a lost job."""
        return bool(self.accepted_in) and not self.executed

    @property
    def conflicting(self) -> bool:
        """Executed terminals that disagree — different states, or the
        same ``done`` with different numbers (a determinism breach)."""
        if len(self.states) > 1:
            return True
        if self.states == {DONE}:
            results = {(cycles, ipc)
                       for _, _, cycles, ipc in self.executed}
            return len(results) > 1
        return False

    @property
    def duplicates(self) -> int:
        """Executed terminals beyond the first (agreeing or not)."""
        return max(len(self.executed) - 1, 0)


@dataclass
class AuditReport:
    """The cluster-wide fold of every journal under the audited dirs."""

    dirs: list[str] = field(default_factory=list)
    jobs: dict[str, JobAudit] = field(default_factory=dict)
    #: State-dir name -> set of journaled event kinds (events.jsonl).
    events: dict[str, set[str]] = field(default_factory=dict)
    crashes: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def missing(self) -> list[str]:
        return sorted(j.id for j in self.jobs.values() if j.missing)

    @property
    def conflicting(self) -> list[str]:
        return sorted(j.id for j in self.jobs.values() if j.conflicting)

    @property
    def duplicates(self) -> int:
        return sum(j.duplicates for j in self.jobs.values())

    @property
    def adopted(self) -> list[str]:
        return sorted(j.id for j in self.jobs.values() if j.adopted_from)

    @property
    def effectively_once(self) -> bool:
        """Cluster bar: nothing lost, nothing disagreeing."""
        return not self.missing and not self.conflicting \
            and not self.problems

    @property
    def strict_exactly_once(self) -> bool:
        """Single-daemon bar: effectively-once and zero duplicates."""
        return self.effectively_once and self.duplicates == 0

    def event_kinds(self) -> set[str]:
        """The union of event kinds across every audited daemon."""
        out: set[str] = set()
        for kinds in self.events.values():
            out |= kinds
        return out

    def states_of(self, job_id: str) -> set[str]:
        job = self.jobs.get(job_id)
        return job.states if job is not None else set()

    def executed_dirs(self, job_id: str) -> list[str]:
        job = self.jobs.get(job_id)
        if job is None:
            return []
        return sorted({name for name, _, _, _ in job.executed})

    def summary_line(self, *, strict: bool = False) -> str:
        ok = self.strict_exactly_once if strict else self.effectively_once
        verdict = "OK" if ok else "FAILED"
        bar = "exactly-once" if strict else "effectively-once"
        text = (f"audit {verdict} ({bar}): {len(self.dirs)} journal(s), "
                f"{len(self.jobs)} job(s), {len(self.missing)} missing, "
                f"{len(self.conflicting)} conflicting, "
                f"{self.duplicates} duplicate execution(s), "
                f"{len(self.adopted)} adopted, {self.crashes} crash(es)")
        if self.problems:
            text += f"; {self.problems[0]}"
        return text


def audit_state_dirs(dirs: Sequence[str | Path]) -> AuditReport:
    """Fold every ``journal.jsonl``/``events.jsonl`` under ``dirs``.

    Works on live *or* stopped daemons (journal replay tolerates a torn
    tail), but the exactly-once verdict only means anything once every
    daemon has drained or died.
    """
    report = AuditReport()
    for raw in dirs:
        directory = Path(raw)
        name = directory.name or str(directory)
        report.dirs.append(name)
        journal = directory / "journal.jsonl"
        if not journal.exists():
            report.problems.append(f"{name}: no journal.jsonl")
            continue
        for record in replay_journal(journal).records:
            kind = record.get("type")
            rid = record.get("id")
            if kind == "crash":
                report.crashes += 1
                continue
            if not isinstance(rid, str) or not rid:
                continue
            job = report.jobs.setdefault(rid, JobAudit(id=rid))
            if kind == "submit":
                job.accepted_in.append(name)
                job.ordinals.append(record.get("ordinal"))
                source = record.get("adopted_from")
                if source:
                    job.adopted_from.append(str(source))
            elif kind in EXECUTED_KINDS:
                state = record.get("state") or kind
                if state not in TERMINAL:
                    report.problems.append(
                        f"{name}: terminal record for {rid} carries "
                        f"non-terminal state {state!r}")
                    continue
                job.executed.append((name, state, record.get("cycles"),
                                     record.get("ipc")))
            elif kind in REPLICA_KINDS:
                job.replicated.append(
                    (name, kind, record.get("state") or "?"))
        events = directory / "events.jsonl"
        kinds: set[str] = set()
        if events.exists():
            kinds = {record.get("kind")
                     for record in replay_journal(events).records
                     if record.get("type") == "event"}
            kinds.discard(None)
        report.events[name] = kinds
    return report


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="Offline exactly-once audit over repro-serve state "
                    "dirs: fold every journal, find lost, conflicting "
                    "and duplicated jobs.")
    parser.add_argument("dirs", nargs="+", metavar="STATE_DIR",
                        help="daemon state directories to audit together")
    parser.add_argument("--strict", action="store_true",
                        help="fail on agreeing duplicate executions too "
                             "(single-daemon exactly-once bar)")
    parser.add_argument("--verbose", action="store_true",
                        help="print one line per audited job")
    args = parser.parse_args(argv)

    report = audit_state_dirs(args.dirs)
    print(report.summary_line(strict=args.strict))
    for problem in report.problems:
        print(f"  problem: {problem}", file=sys.stderr)
    for rid in report.missing:
        print(f"  missing: {rid} accepted in "
              f"{report.jobs[rid].accepted_in} but never executed",
              file=sys.stderr)
    for rid in report.conflicting:
        job = report.jobs[rid]
        print(f"  conflict: {rid} executed as {sorted(job.states)} "
              f"in {report.executed_dirs(rid)}", file=sys.stderr)
    if args.verbose:
        for rid in sorted(report.jobs):
            job = report.jobs[rid]
            where = report.executed_dirs(rid) or ["-"]
            flags = []
            if job.adopted_from:
                flags.append(f"adopted-from={job.adopted_from}")
            if job.duplicates:
                flags.append(f"dups={job.duplicates}")
            print(f"  {rid}: {sorted(job.states) or ['pending']} "
                  f"on {where} {' '.join(flags)}".rstrip())
    ok = (report.strict_exactly_once if args.strict
          else report.effectively_once)
    return 0 if ok else 1


if __name__ == "__main__":   # pragma: no cover - console entry
    raise SystemExit(main())
