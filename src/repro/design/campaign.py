"""Persistent, resumable campaigns: a design sweep that survives ^C.

A :class:`Campaign` is one compiled design plus an on-disk *manifest*
(``.repro-campaigns/<name>-<digest12>/manifest.json``): the design digest,
the compile environment, and one record per cell — label, job payload,
fingerprint, status and headline numbers.  The digest is part of the
directory name, so re-running the same design file (or the same in-code
design) against the same environment lands on the same manifest and
resumes, while *any* change to factors, filters, overrides, ordering or
environment starts a fresh campaign next door.

Resume semantics (the contract ``make design-smoke`` drills):

* Cells already ``done`` in the manifest are not re-dispatched at all.
* Cells that finished in an interrupted batch are in the result cache
  (the engine caches each result as it arrives), so re-dispatching them
  replays from disk — status flips to ``done`` without simulating.
* Nothing about the design needs re-declaring: jobs are rebuilt from
  their manifest payloads, not from the design object.

Manifests are written atomically (tmp + rename) after every batch, so a
crash mid-campaign never corrupts the record of completed cells.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..harness.cache import ResultCache
from ..harness.checkpoints import CheckpointPlan
from ..harness.engine import DEFAULT_RETRIES, BatchReport, run_batch
from ..harness.faults import FaultPlan
from ..harness.jobs import SimJob
from .design import CompiledCell, Design, DesignError
from .env import DesignEnv

#: Where campaign manifests live by default (git-ignorable, like the
#: result cache and checkpoint store).
DEFAULT_CAMPAIGN_ROOT = ".repro-campaigns"

#: On-disk manifest format version.
_MANIFEST_FORMAT = 1

_MANIFEST = "manifest.json"


class CampaignError(RuntimeError):
    """A campaign manifest is unusable (corrupt, wrong format)."""


@dataclass
class CampaignCell:
    """One design cell's persistent execution record."""

    index: int
    label: str
    fingerprint: str
    job: dict                      # SimJob.to_payload rendering
    status: str = "pending"        # pending | done | failed
    cycles: int | None = None
    ipc: float | None = None
    error: str | None = None

    def to_record(self) -> dict[str, Any]:
        return {"index": self.index, "label": self.label,
                "fingerprint": self.fingerprint, "job": self.job,
                "status": self.status, "cycles": self.cycles,
                "ipc": self.ipc, "error": self.error}

    @classmethod
    def from_record(cls, data: dict) -> "CampaignCell":
        return cls(index=data["index"], label=data["label"],
                   fingerprint=data["fingerprint"], job=data["job"],
                   status=data.get("status", "pending"),
                   cycles=data.get("cycles"), ipc=data.get("ipc"),
                   error=data.get("error"))


@dataclass
class CampaignReport:
    """What one :meth:`Campaign.run` call did."""

    executed: int = 0              # cells dispatched this run
    resumed: int = 0               # cells already done in the manifest
    failed: int = 0
    batch: BatchReport | None = None

    @property
    def ok(self) -> bool:
        return self.failed == 0


@dataclass
class Campaign:
    """A compiled design bound to its on-disk manifest."""

    name: str
    digest: str
    path: Path
    env: DesignEnv
    cells: list[CampaignCell] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, design: Design, env: DesignEnv | None = None, *,
             root: str | Path = DEFAULT_CAMPAIGN_ROOT) -> "Campaign":
        """Compile ``design`` under ``env`` and bind the manifest.

        A manifest from a previous (possibly interrupted) run of the same
        design+environment is loaded — per-cell statuses and all; any
        other design lands in its own directory.
        """
        env = env if env is not None else DesignEnv()
        compiled = design.compile(env)
        if not compiled:
            raise DesignError(f"design {design.name!r} compiled to zero "
                              f"cells; nothing to run")
        digest = design.digest(env)
        path = Path(root) / f"{design.name}-{digest[:12]}"
        manifest = path / _MANIFEST
        if manifest.is_file():
            campaign = cls.load(path)
            if campaign.digest != digest:   # pragma: no cover - paranoia
                raise CampaignError(
                    f"manifest at {path} records digest "
                    f"{campaign.digest[:12]}, expected {digest[:12]}")
            return campaign
        cells = [CampaignCell(index=cc.index, label=cc.label,
                              fingerprint=cc.job.fingerprint(),
                              job=cc.job.to_payload())
                 for cc in compiled]
        campaign = cls(name=design.name, digest=digest, path=path,
                       env=env, cells=cells)
        campaign.save()
        return campaign

    @classmethod
    def load(cls, path: str | Path) -> "Campaign":
        path = Path(path)
        try:
            data = json.loads((path / _MANIFEST).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise CampaignError(f"unreadable campaign manifest under "
                                f"{path}: {error}") from None
        if data.get("format") != _MANIFEST_FORMAT:
            raise CampaignError(f"campaign manifest format "
                                f"{data.get('format')!r} not supported")
        return cls(name=data["name"], digest=data["digest"], path=path,
                   env=DesignEnv.from_payload(data["env"]),
                   cells=[CampaignCell.from_record(r)
                          for r in data["cells"]])

    # ------------------------------------------------------------------ #
    def save(self) -> None:
        """Atomic manifest write (tmp + rename, like the result cache)."""
        self.path.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": _MANIFEST_FORMAT,
            "name": self.name,
            "digest": self.digest,
            "env": self.env.to_payload(),
            "written": time.time(),
            "cells": [cell.to_record() for cell in self.cells],
        }
        fd, tmp = tempfile.mkstemp(dir=self.path, prefix=".tmp-manifest-")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp, self.path / _MANIFEST)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    def pending(self) -> list[CampaignCell]:
        """Cells still owed a result (``failed`` cells are retried)."""
        return [cell for cell in self.cells if cell.status != "done"]

    def counts(self) -> dict[str, int]:
        out = {"pending": 0, "done": 0, "failed": 0}
        for cell in self.cells:
            out[cell.status] = out.get(cell.status, 0) + 1
        return out

    def run(self, *, workers: int = 1, cache: ResultCache | None = None,
            retries: int = DEFAULT_RETRIES, timeout: float | None = None,
            fail_fast: bool = False, faults: FaultPlan | None = None,
            sanitize: bool | None = None,
            checkpoints: CheckpointPlan | None = None,
            progress=None) -> CampaignReport:
        """Execute every non-``done`` cell as one engine batch.

        The manifest is re-saved after the batch, so the next invocation
        resumes from exactly what completed — and mid-batch interrupts
        still resume cheaply, because the engine caches each result the
        moment it arrives.
        """
        todo = self.pending()
        report = CampaignReport(resumed=len(self.cells) - len(todo))
        if not todo:
            return report
        jobs = [SimJob.from_payload(cell.job) for cell in todo]
        batch = run_batch(jobs, workers=workers, cache=cache,
                          retries=retries, timeout=timeout,
                          fail_fast=fail_fast, faults=faults,
                          sanitize=sanitize, checkpoints=checkpoints,
                          progress=progress)
        report.batch = batch
        report.executed = len(todo)
        for cell, outcome in zip(todo, batch.outcomes):
            if outcome.result is not None:
                cell.status = "done"
                cell.cycles = outcome.result.cycles
                cell.ipc = outcome.result.ipc
                cell.error = None
            else:
                cell.status = "failed"
                error = outcome.error or outcome.status
                cell.error = error.splitlines()[0][:200] if error else None
                report.failed += 1
        self.save()
        return report
