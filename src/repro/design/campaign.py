"""Durable, shardable campaigns: a design sweep that survives anything.

A :class:`Campaign` is one compiled design bound to an on-disk store
(``.repro-campaigns/<name>-<digest12>/``) built for crash safety and
concurrency:

* ``meta.json`` — what the campaign *is*: design digest, compile
  environment, one static record per cell (label, job payload,
  fingerprint).  Written atomically exactly once.
* ``journal.jsonl`` — what *happened*: an append-only, checksummed
  write-ahead journal (:mod:`repro.design.journal`) of ``claim`` /
  ``heartbeat`` / ``release`` / ``done`` / ``failed`` / ``exhausted``
  records.  Torn-tail and corrupt-record tolerant on replay; appends
  interleave whole records, so N workers share one journal safely.
* ``snapshot.json`` — periodic compaction: terminal cell states folded
  from the journal, written atomically, after which the journal is
  truncated.  Replay is always ``fold(snapshot) + fold(journal)`` and
  the fold is idempotent, so a crash between the two steps is harmless.

Cell claiming is lease-based (:mod:`repro.design.leases`): a worker
appends a claim with its id and a TTL, heartbeats while it runs, and
loses the lease if it goes silent — so ``repro-exp --design F --shard``
processes on one host or several sharing a filesystem drain one campaign
together, expired leases are reclaimed, and a double completion (two
workers racing one cell) resolves deterministically by fingerprint with
bitwise-identical results either way.

The digest is part of the directory name, so re-running the same design
file against the same environment lands on the same store and resumes,
while *any* change to factors, filters, overrides, ordering or
environment starts a fresh campaign next door.  Pre-journal manifests
(``manifest.json``, format 1) are migrated in place on open; unparseable
ones are quarantined as ``.corrupt`` (mirroring the result cache) and
the campaign restarts from the design, never crashes.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..harness.cache import ResultCache
from ..harness.checkpoints import CheckpointPlan
from ..harness.engine import DEFAULT_RETRIES, BatchReport, run_batch
from ..harness.faults import FaultPlan
from ..harness.jobs import SimJob
from .design import Design, DesignError
from .env import DesignEnv
from .journal import (JOURNAL_NAME, Journal, load_snapshot, replay_journal,
                      write_snapshot)
from .leases import (DEFAULT_LEASE_TTL, DONE, EXHAUSTED, FAILED, PENDING,
                     CampaignState, claim_winner, claimable, fold_records,
                     newly_exhausted)

#: Where campaign stores live by default (git-ignorable, like the
#: result cache and checkpoint store).
DEFAULT_CAMPAIGN_ROOT = ".repro-campaigns"

#: On-disk meta format version (format 1 was the rewrite-the-world
#: ``manifest.json``; it is migrated on open).
_META_FORMAT = 2

_META = "meta.json"
_LEGACY_MANIFEST = "manifest.json"
_COMPACT_LOCK = "compact.lock"

#: Auto-compact once the journal accumulates this many records.
DEFAULT_COMPACT_EVERY = 512

#: A compact.lock older than this is a crashed compactor: break it.
_LOCK_STALE_SECONDS = 60.0

#: Per-worker lease-TTL jitter span, as a fraction of the base TTL.
#: Each worker's effective TTL is ``ttl * (1 + frac * jitter)`` with
#: ``jitter`` deterministic in [0, 1) from the worker id — so N workers
#: whose leases all expired in one crash do not stampede the reclaim in
#: lockstep: their expiry (and heartbeat) clocks are spread over a
#: quarter-TTL window instead of firing at the same instant.
TTL_JITTER_FRAC = 0.25


class CampaignError(RuntimeError):
    """A campaign store is unusable (corrupt, wrong format, no meta)."""


def default_worker_id() -> str:
    """Host + pid: unique among workers sharing a filesystem."""
    return f"{socket.gethostname()}-{os.getpid()}"


def worker_ttl_jitter(worker_id: str) -> float:
    """A deterministic jitter fraction in ``[0, 1)`` for one worker id.

    Hash-derived, not random: the same worker always computes the same
    effective TTL, so lease arbitration stays reproducible while
    *different* workers are still decorrelated.
    """
    digest = hashlib.sha256(worker_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


@dataclass
class CampaignCell:
    """One design cell: static identity plus its folded journal state."""

    index: int
    label: str
    fingerprint: str
    job: dict                      # SimJob.to_payload rendering
    status: str = PENDING          # pending|claimed|done|failed|exhausted
    attempts: int = 0
    cycles: int | None = None
    ipc: float | None = None
    error: str | None = None

    def to_record(self) -> dict[str, Any]:
        """The static half only — dynamic state lives in the journal."""
        return {"index": self.index, "label": self.label,
                "fingerprint": self.fingerprint, "job": self.job}

    @classmethod
    def from_record(cls, data: dict) -> "CampaignCell":
        return cls(index=data["index"], label=data["label"],
                   fingerprint=data["fingerprint"], job=data["job"],
                   status=data.get("status", PENDING),
                   cycles=data.get("cycles"), ipc=data.get("ipc"),
                   error=data.get("error"))


@dataclass
class CampaignReport:
    """What one :meth:`Campaign.run` call did."""

    executed: int = 0              # cells dispatched this run
    resumed: int = 0               # cells already done at run start
    failed: int = 0                # cells that ended failed (retryable)
    exhausted: int = 0             # cells past --max-retries (terminal)
    #: Cells another live worker beat us to (shard contention).
    lease_conflicts: int = 0
    #: Expired leases this worker reclaimed.
    leases_reclaimed: int = 0
    #: Done records beyond the first per cell (double completions).
    duplicate_done: int = 0
    journal_appends: int = 0
    journal_append_errors: int = 0
    batches: list[BatchReport] = field(default_factory=list)
    #: Wall-clock offset of each batch's start (for the trace lane).
    batch_offsets: list[float] = field(default_factory=list)
    #: Campaign-level trace events ({"kind", "t", "payload"}) — journal,
    #: lease and compaction activity in the engine's wall-clock lane.
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failed == 0 and self.exhausted == 0

    @property
    def batch(self) -> BatchReport | None:
        """The last engine batch (None when nothing was dispatched)."""
        return self.batches[-1] if self.batches else None

    def engine_events(self) -> list[dict[str, Any]]:
        """Campaign + batch events merged on one wall-clock time base."""
        merged = list(self.events)
        for offset, batch in zip(self.batch_offsets, self.batches):
            merged.extend({**event, "t": event["t"] + offset}
                          for event in batch.events)
        merged.sort(key=lambda event: event["t"])
        return merged

    @property
    def checkpoint_corrupt(self) -> int:
        return sum(batch.checkpoint_corrupt for batch in self.batches)


class _Heartbeat(threading.Thread):
    """Appends heartbeat records while the worker runs (lease keep-alive).

    One thread per :meth:`Campaign.run` invocation, started before the
    first claim and stopped — *joined*, never leaked — in a ``finally``
    that covers claims and batches alike, so a worker that raises while
    claiming (a corrupt store, an injected fault) or dies mid-cell does
    not leave a zombie thread appending heartbeats for leases it no
    longer defends.
    """

    def __init__(self, journal: Journal, interval: float) -> None:
        super().__init__(name="campaign-heartbeat", daemon=True)
        self.journal = journal
        self.interval = interval
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            self.journal.heartbeat()

    def stop(self) -> None:
        self._halt.set()
        if self.is_alive() or self.ident is not None:
            self.join(timeout=5.0)


@dataclass
class Campaign:
    """A compiled design bound to its durable on-disk store."""

    name: str
    digest: str
    path: Path
    env: DesignEnv
    cells: list[CampaignCell] = field(default_factory=list)
    #: The append handle of the most recent/current :meth:`run`.
    journal: Journal | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._state: CampaignState | None = None
        self._journal_records = 0
        self._nonce = 0
        #: Replay damage observed by the last refresh (reported once).
        self.replay_corrupt = 0
        self.replay_torn = False

    # ------------------------------------------------------------------ #
    # opening / loading
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, design: Design, env: DesignEnv | None = None, *,
             root: str | Path = DEFAULT_CAMPAIGN_ROOT) -> "Campaign":
        """Compile ``design`` under ``env`` and bind the on-disk store.

        A store from a previous (possibly interrupted, possibly still
        *running* elsewhere) campaign of the same design+environment is
        loaded — journal state and all; any other design lands in its
        own directory.  A corrupt meta file is quarantined and the store
        rebuilt from the design; pre-journal manifests are migrated.
        """
        env = env if env is not None else DesignEnv()
        compiled = design.compile(env)
        if not compiled:
            raise DesignError(f"design {design.name!r} compiled to zero "
                              f"cells; nothing to run")
        digest = design.digest(env)
        path = Path(root) / f"{design.name}-{digest[:12]}"
        _sweep_strays(path)
        if (path / _META).is_file() or (path / _LEGACY_MANIFEST).is_file():
            try:
                campaign = cls.load(path)
            except CampaignError:
                # load() already quarantined the unparseable file; the
                # design is in hand, so rebuild instead of raising.
                campaign = None
            if campaign is not None:
                if campaign.digest != digest:   # pragma: no cover - paranoia
                    raise CampaignError(
                        f"store at {path} records digest "
                        f"{campaign.digest[:12]}, expected {digest[:12]}")
                return campaign
        cells = [CampaignCell(index=cc.index, label=cc.label,
                              fingerprint=cc.job.fingerprint(),
                              job=cc.job.to_payload())
                 for cc in compiled]
        campaign = cls(name=design.name, digest=digest, path=path,
                       env=env, cells=cells)
        campaign._write_meta()
        campaign.refresh()
        return campaign

    @classmethod
    def load(cls, path: str | Path) -> "Campaign":
        """Bind an existing store (meta + journal replay).

        Stray ``.tmp-*`` files (a process killed between write and
        rename) are swept; an unparseable meta/manifest is quarantined
        as ``.corrupt`` before :class:`CampaignError` is raised, so the
        bad file can never wedge the store (``open()`` then rebuilds it
        from the design).
        """
        path = Path(path)
        _sweep_strays(path)
        meta = path / _META
        legacy = path / _LEGACY_MANIFEST
        if meta.is_file():
            data = _read_store_file(meta, expect_format=_META_FORMAT)
            campaign = cls(name=data["name"], digest=data["digest"],
                           path=path,
                           env=DesignEnv.from_payload(data["env"]),
                           cells=[CampaignCell.from_record(r)
                                  for r in data["cells"]])
        elif legacy.is_file():
            campaign = cls._migrate_legacy(path, legacy)
        else:
            raise CampaignError(f"no campaign store under {path}")
        campaign.refresh()
        return campaign

    @classmethod
    def _migrate_legacy(cls, path: Path, legacy: Path) -> "Campaign":
        """Lift a format-1 manifest into meta + journal records."""
        data = _read_store_file(legacy, expect_format=1)
        campaign = cls(name=data["name"], digest=data["digest"], path=path,
                       env=DesignEnv.from_payload(data["env"]),
                       cells=[CampaignCell.from_record(r)
                              for r in data["cells"]])
        campaign._write_meta()
        journal = Journal(path / JOURNAL_NAME, worker="migration")
        for cell in campaign.cells:
            if cell.status == DONE:
                journal.append("done", cell=cell.index,
                               fingerprint=cell.fingerprint,
                               cycles=cell.cycles, ipc=cell.ipc)
            elif cell.status == FAILED:
                journal.append("failed", cell=cell.index,
                               fingerprint=cell.fingerprint,
                               error=cell.error)
        try:
            legacy.rename(legacy.with_name(legacy.name + ".migrated"))
        except OSError:
            pass
        return campaign

    def _write_meta(self) -> None:
        """Atomic one-time meta write (tmp + rename)."""
        self.path.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": _META_FORMAT,
            "name": self.name,
            "digest": self.digest,
            "env": self.env.to_payload(),
            "written": time.time(),
            "cells": [cell.to_record() for cell in self.cells],
        }
        fd, tmp = tempfile.mkstemp(dir=self.path, prefix=".tmp-meta-")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp, self.path / _META)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def refresh(self) -> CampaignState:
        """Re-fold snapshot + journal (+ any unpersisted records) and
        update every cell's status/attempts/result fields."""
        replay = replay_journal(self.path / JOURNAL_NAME)
        records = list(replay.records)
        if self.journal is not None and self.journal.unpersisted:
            records.extend(self.journal.unpersisted)
        state = fold_records(
            records, base=load_snapshot(self.path, self.digest),
            fingerprints={cell.index: cell.fingerprint
                          for cell in self.cells})
        self._journal_records = len(replay.records)
        self.replay_corrupt = replay.corrupt_records
        self.replay_torn = replay.torn_tail
        now = time.time()
        for cell in self.cells:
            folded = state.cells[cell.index]
            cell.status = folded.display_status(state.beats, now)
            cell.attempts = folded.attempts
            cell.cycles = folded.cycles
            cell.ipc = folded.ipc
            cell.error = folded.error
        self._state = state
        return state

    def pending(self) -> list[CampaignCell]:
        """Cells still owed a result (failed cells retry; exhausted and
        done cells do not)."""
        return [cell for cell in self.cells
                if cell.status not in (DONE, EXHAUSTED)]

    def counts(self) -> dict[str, int]:
        out = {PENDING: 0, "claimed": 0, DONE: 0, FAILED: 0, EXHAUSTED: 0}
        for cell in self.cells:
            out[cell.status] = out.get(cell.status, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, *, workers: int = 1, cache: ResultCache | None = None,
            retries: int = DEFAULT_RETRIES, timeout: float | None = None,
            fail_fast: bool = False, faults: FaultPlan | None = None,
            sanitize: bool | None = None,
            checkpoints: CheckpointPlan | None = None,
            progress=None, worker_id: str | None = None,
            lease_ttl: float = DEFAULT_LEASE_TTL,
            max_retries: int | None = None, shard: bool = False,
            claim_chunk: int | None = None,
            compact_every: int = DEFAULT_COMPACT_EVERY) -> CampaignReport:
        """Drain every claimable cell; return what this worker did.

        Claim/execute/journal in a loop: each iteration leases a set of
        cells (everything claimable, or a chunk of ``claim_chunk`` in
        ``shard`` mode so concurrent workers interleave), runs them as
        one engine batch with heartbeats keeping the leases alive, and
        journals each outcome the moment the engine records it.  A crash
        at any point loses nothing: completed results are in the result
        cache, journaled outcomes replay on the next invocation, and the
        crashed worker's leases expire after ``lease_ttl`` seconds so
        surviving (or restarted) workers reclaim its cells.

        ``max_retries`` caps per-cell failures across invocations: a
        cell failing ``max_retries + 1`` times is journaled
        ``exhausted`` and never claimed again.  Within one invocation a
        failed cell is not re-claimed (retry happens on resume, as the
        manifest-era campaign did).
        """
        worker_id = worker_id or default_worker_id()
        journal = Journal(self.path / JOURNAL_NAME, worker=worker_id,
                          faults=faults)
        self.journal = journal
        started = time.monotonic()
        report = CampaignReport()

        def event(kind: str, **payload: Any) -> None:
            report.events.append({"kind": kind,
                                  "t": time.monotonic() - started,
                                  "payload": payload})

        state = self.refresh()
        if self.replay_corrupt or self.replay_torn:
            event("journal.damage", corrupt=self.replay_corrupt,
                  torn_tail=self.replay_torn)
        report.resumed = sum(1 for cell in state.cells.values()
                             if cell.status == DONE)
        exhausted_before = {index for index, cell in state.cells.items()
                            if cell.status == EXHAUSTED}
        stall = faults is not None and faults.stall_heartbeats()
        failed_this_run: set[int] = set()

        # Deterministic per-worker lease jitter: spread expiry/heartbeat
        # clocks so N workers never stampede expired leases in lockstep.
        lease_ttl = lease_ttl * (1.0 + TTL_JITTER_FRAC
                                 * worker_ttl_jitter(worker_id))

        # One heartbeat thread for the whole invocation, covering claims
        # as well as batches, torn down in the finally below no matter
        # where the loop raises — a heartbeat must never outlive its run.
        heart = None
        if not stall:
            heart = _Heartbeat(journal, interval=max(lease_ttl / 3.0, 0.2))
            heart.start()
        elif faults is not None:
            event("heartbeat.stalled", worker=worker_id)

        try:
            while True:
                if self._note_exhausted(journal, state, max_retries, event):
                    state = self.refresh()
                now = time.time()
                todo = claimable(state, now=now, worker=worker_id,
                                 max_retries=max_retries,
                                 exclude=failed_this_run)
                if not todo:
                    break
                if shard:
                    todo = todo[:max(claim_chunk or workers, 1)]
                for index in todo:
                    if state.cells[index].claims:
                        report.leases_reclaimed += 1
                        event("lease.expired", cell=index,
                              holder=state.cells[index].claims[0]
                              .get("worker"))
                claimed = self._claim(journal, todo, worker_id, lease_ttl,
                                      report, event)
                if not claimed:
                    state = self.refresh()
                    continue

                jobs = [SimJob.from_payload(self.cells[index].job)
                        for index in claimed]

                def on_outcome(outcome, _cells=claimed):
                    index = _cells[outcome.index]
                    cell = self.cells[index]
                    if outcome.result is not None:
                        journal.append("done", cell=index,
                                       fingerprint=cell.fingerprint,
                                       cycles=outcome.result.cycles,
                                       ipc=outcome.result.ipc)
                        event("cell.done", cell=index, status=outcome.status)
                    elif outcome.status == "skipped":
                        journal.append("release", cell=index)
                        event("lease.released", cell=index)
                    else:
                        error = outcome.error or outcome.status
                        journal.append(
                            "failed", cell=index,
                            fingerprint=cell.fingerprint,
                            error=(error.splitlines()[0][:200] if error
                                   else None))
                        event("cell.failed", cell=index,
                              status=outcome.status)

                offset = time.monotonic() - started
                batch = run_batch(jobs, workers=workers, cache=cache,
                                  retries=retries, timeout=timeout,
                                  fail_fast=fail_fast, faults=faults,
                                  sanitize=sanitize, checkpoints=checkpoints,
                                  progress=progress, on_outcome=on_outcome)
                report.batches.append(batch)
                report.batch_offsets.append(offset)
                report.executed += len(claimed)
                for outcome in batch.outcomes:
                    if outcome.result is None \
                            and outcome.status != "skipped":
                        failed_this_run.add(claimed[outcome.index])
                state = self.refresh()
                if self._journal_records >= compact_every:
                    self.compact(event=event)
                    state = self.refresh()
                if fail_fast and failed_this_run:
                    break
        finally:
            if heart is not None:
                heart.stop()

        if self._note_exhausted(journal, state, max_retries, event):
            pass
        state = self.refresh()
        if journal.append_errors:
            # Degraded durability: the journal lost records (disk full,
            # injected fail-append) — persist the folded state as a
            # snapshot so the next invocation still resumes correctly.
            ok = write_snapshot(self.path, self.digest,
                                self._snapshot_payload(state))
            event("campaign.snapshot_fallback", ok=ok,
                  lost_appends=journal.append_errors)
        newly = {index for index, cell in state.cells.items()
                 if cell.status == EXHAUSTED} - exhausted_before
        report.exhausted = sum(1 for cell in state.cells.values()
                               if cell.status == EXHAUSTED)
        report.failed = len(failed_this_run - newly)
        report.duplicate_done = state.duplicate_done
        report.journal_appends = journal.appends
        report.journal_append_errors = journal.append_errors
        return report

    # ------------------------------------------------------------------ #
    def _claim(self, journal: Journal, indices: list[int], worker: str,
               ttl: float, report: CampaignReport,
               event) -> list[int]:
        """Lease ``indices``; return the subset this worker won.

        Claim-then-arbitrate: append a claim per cell, re-read the
        journal, keep the cells where our claim is first in file order
        among live ones, and release the rest.  With a degraded journal
        (appends failing) arbitration is impossible — claim locally and
        proceed, trading lease safety for completion (double execution
        stays safe: results are deterministic and dedup'd by
        fingerprint).
        """
        nonces: dict[int, str] = {}
        persisted: dict[int, bool] = {}
        for index in indices:
            self._nonce += 1
            nonce = f"{worker}#{self._nonce}"
            nonces[index] = nonce
            _, ok = journal.append("claim", cell=index,
                                   fingerprint=self.cells[index].fingerprint,
                                   nonce=nonce, ttl=ttl)
            persisted[index] = ok
        state = self.refresh()
        now = time.time()
        won: list[int] = []
        for index in indices:
            if not persisted[index]:
                won.append(index)
                continue
            winner = claim_winner(state.cells[index], state.beats, now)
            if winner is not None and winner.get("nonce") == nonces[index]:
                won.append(index)
                event("lease.claim", cell=index, ttl=ttl)
            else:
                journal.append("release", cell=index, nonce=nonces[index])
                report.lease_conflicts += 1
                event("lease.conflict", cell=index,
                      winner=(winner or {}).get("worker"))
        return won

    def _note_exhausted(self, journal: Journal, state: CampaignState,
                        max_retries: int | None, event) -> int:
        """Journal cells whose retry budget ran out; return how many."""
        exhausted = newly_exhausted(state, max_retries)
        for index in exhausted:
            journal.append("exhausted", cell=index,
                           fingerprint=self.cells[index].fingerprint,
                           attempts=state.cells[index].attempts)
            event("cell.exhausted", cell=index,
                  attempts=state.cells[index].attempts)
        return len(exhausted)

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def _snapshot_payload(self, state: CampaignState) -> dict[int, dict]:
        out: dict[int, dict] = {}
        for index, cell in state.cells.items():
            if cell.status == PENDING and cell.attempts == 0:
                continue
            entry: dict[str, Any] = {"status": cell.status}
            if cell.status == DONE:
                entry.update(cycles=cell.cycles, ipc=cell.ipc)
            else:
                entry.update(attempts=cell.attempts, error=cell.error)
            out[index] = entry
        return out

    def compact(self, *, force: bool = False, event=None) -> bool:
        """Fold the journal into ``snapshot.json`` and truncate it.

        Safe only when nobody holds a live lease (claims are ephemeral
        and not snapshotted), so the check is a precondition and a
        ``compact.lock`` (O_EXCL, stale-broken) serializes concurrent
        compactors.  A record appended between the locked re-read and
        the truncation can only come from a lease-expired worker; losing
        it costs an idempotent re-execution, never a wrong state.
        Returns True when a compaction actually happened.
        """
        state = self.refresh()
        now = time.time()
        if not force:
            for cell in state.cells.values():
                if claim_winner(cell, state.beats, now) is not None:
                    return False
        if not self._take_compact_lock():
            return False
        try:
            state = self.refresh()
            records = self._journal_records
            if not write_snapshot(self.path, self.digest,
                                  self._snapshot_payload(state)):
                return False
            fd, tmp = tempfile.mkstemp(dir=self.path, prefix=".tmp-jnl-")
            os.close(fd)
            os.replace(tmp, self.path / JOURNAL_NAME)
        except OSError:
            return False
        finally:
            try:
                os.unlink(self.path / _COMPACT_LOCK)
            except OSError:
                pass
        if event is not None:
            event("journal.compact", records=records,
                  cells=len(self._snapshot_payload(state)))
        return True

    def _take_compact_lock(self) -> bool:
        lock = self.path / _COMPACT_LOCK
        for attempt in range(2):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, f"{default_worker_id()} {time.time()}\n"
                         .encode())
                os.close(fd)
                return True
            except FileExistsError:
                try:
                    stale = (time.time() - lock.stat().st_mtime
                             > _LOCK_STALE_SECONDS)
                except OSError:
                    continue   # holder just released; retry once
                if not stale:
                    return False
                try:
                    os.unlink(lock)
                except OSError:
                    return False
            except OSError:
                return False
        return False


# --------------------------------------------------------------------------- #
# store-file helpers
# --------------------------------------------------------------------------- #

def _sweep_strays(path: Path) -> int:
    """Remove ``.tmp-*`` strays a killed process left behind."""
    removed = 0
    if not path.is_dir():
        return removed
    for stray in path.glob(".tmp-*"):
        try:
            stray.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def _read_store_file(path: Path, *, expect_format: int) -> dict:
    """Parse a meta/manifest file; quarantine-and-raise when unusable."""
    try:
        data = json.loads(path.read_text())
        if data.get("format") != expect_format:
            raise ValueError(f"format {data.get('format')!r}, "
                             f"expected {expect_format}")
        if not isinstance(data.get("cells"), list):
            raise ValueError("no cell list")
        return data
    except OSError as error:
        raise CampaignError(f"unreadable campaign store file {path}: "
                            f"{error}") from None
    except (ValueError, KeyError, TypeError) as error:
        try:
            path.rename(path.with_name(path.name + ".corrupt"))
        except OSError:
            pass
        raise CampaignError(f"corrupt campaign store file {path} "
                            f"(quarantined as .corrupt): {error}") from None
