"""Declarative experiment designs (ROADMAP item 2).

Experiments are *data*: a :class:`Design` declares a factorial space
(crossed/nested/derived :class:`Factor`\\ s, exclusion filters, orderings,
per-cell :class:`Override`\\ s), :meth:`Design.compile` lowers it
deterministically to :class:`~repro.harness.jobs.SimJob`\\ s under a
:class:`DesignEnv`, and a :class:`Campaign` gives the sweep a persistent,
resumable on-disk manifest.  Design files (TOML/JSON) round-trip through
:func:`parse_design`/:func:`serialize_design` with identical compiled
fingerprints.  See docs/DESIGNS.md.
"""

from .campaign import (DEFAULT_CAMPAIGN_ROOT, Campaign, CampaignCell,
                       CampaignError, CampaignReport)
from .design import (RESERVED, Block, CompiledCell, Design, DesignError,
                     Factor, Override)
from .env import DesignEnv, build_job
from .files import (ENV_KEYS, NONE_SENTINEL, design_payload, load_design,
                    parse_design, serialize_design)

__all__ = [
    "DEFAULT_CAMPAIGN_ROOT", "ENV_KEYS", "NONE_SENTINEL", "RESERVED",
    "Block", "Campaign", "CampaignCell", "CampaignError", "CampaignReport",
    "CompiledCell", "Design", "DesignEnv", "DesignError", "Factor",
    "Override", "build_job", "design_payload", "load_design",
    "parse_design", "serialize_design",
]
