"""Declarative experiment designs (ROADMAP item 2).

Experiments are *data*: a :class:`Design` declares a factorial space
(crossed/nested/derived :class:`Factor`\\ s, exclusion filters, orderings,
per-cell :class:`Override`\\ s), :meth:`Design.compile` lowers it
deterministically to :class:`~repro.harness.jobs.SimJob`\\ s under a
:class:`DesignEnv`, and a :class:`Campaign` gives the sweep a durable,
resumable, shardable on-disk store: static ``meta.json``, an append-only
checksummed write-ahead journal (:mod:`repro.design.journal`) and
lease-based cell claiming (:mod:`repro.design.leases`) so concurrent
workers drain one campaign safely.  Design files (TOML/JSON) round-trip
through :func:`parse_design`/:func:`serialize_design` with identical
compiled fingerprints.  See docs/DESIGNS.md and docs/ROBUSTNESS.md.
"""

from .campaign import (DEFAULT_CAMPAIGN_ROOT, DEFAULT_COMPACT_EVERY,
                       TTL_JITTER_FRAC, Campaign, CampaignCell, CampaignError,
                       CampaignReport, default_worker_id, worker_ttl_jitter)
from .design import (RESERVED, Block, CompiledCell, Design, DesignError,
                     Factor, Override)
from .env import DesignEnv, build_job
from .files import (ENV_KEYS, NONE_SENTINEL, design_payload, load_design,
                    parse_design, serialize_design)
from .journal import (JOURNAL_NAME, SNAPSHOT_NAME, Journal, JournalReplay,
                      load_snapshot, record_crc, replay_journal,
                      write_snapshot)
from .leases import (DEFAULT_LEASE_TTL, CampaignState, CellState,
                     claim_winner, claimable, fold_records)

__all__ = [
    "DEFAULT_CAMPAIGN_ROOT", "DEFAULT_COMPACT_EVERY", "DEFAULT_LEASE_TTL",
    "ENV_KEYS", "JOURNAL_NAME", "NONE_SENTINEL", "RESERVED", "SNAPSHOT_NAME",
    "TTL_JITTER_FRAC", "worker_ttl_jitter",
    "Block", "Campaign", "CampaignCell", "CampaignError", "CampaignReport",
    "CampaignState", "CellState", "CompiledCell", "Design", "DesignEnv",
    "DesignError", "Factor", "Journal", "JournalReplay", "Override",
    "build_job", "claim_winner", "claimable", "default_worker_id",
    "design_payload", "fold_records", "load_design", "load_snapshot",
    "parse_design", "record_crc", "replay_journal", "serialize_design",
    "write_snapshot",
]
