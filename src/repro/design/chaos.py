"""Campaign-level chaos testing: kill workers until the campaign proves
itself.

The durability claims in :mod:`repro.design.campaign` are only worth
anything under fire, so this harness sets a real campaign on fire,
repeatedly: it launches ``shards`` concurrent ``repro-exp --design FILE
--shard`` worker *processes*, injects a ``kill-worker:K`` fault into
each (the worker dies with :data:`~repro.harness.faults.KILL_EXIT_CODE`
right after its K-th journal append, K drawn from a seeded RNG), then
restarts them, round after round, until the campaign converges.  A final
clean round (no faults) drains anything the last kills left behind.

The drill then asserts the whole point:

* **complete** — every cell is ``done``; none lost, none stuck;
* **exactly once** — the journal holds exactly one counted ``done`` per
  cell (duplicates from lease races are detected and reported);
* **bitwise-equal** — the result table (label, cycles, ipc per cell) is
  byte-for-byte identical to an unfaulted single-worker run of the same
  design in a separate store with a separate cache.

Run it directly (this is what ``make campaign-chaos-smoke`` does)::

    python -m repro.design.chaos examples/shard_demo.toml \\
        --shards 2 --min-kills 5 --seed 7 --root .repro-chaos

Everything is deterministic given ``--seed``: the kill points, the
worker ids, the round schedule.  Wall time is bounded by ``--max-rounds``
and a per-worker subprocess timeout.
"""

from __future__ import annotations

import argparse
import os
import random
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..harness.cache import ResultCache
from ..harness.faults import ENV_SPEC, ENV_STATE, KILL_EXIT_CODE
from .campaign import Campaign
from .env import DesignEnv
from .files import load_design
from .leases import DONE

#: Where a chaos drill keeps its stores unless told otherwise.
DEFAULT_CHAOS_ROOT = ".repro-chaos"

#: Lease TTL used by the drill: short enough that a killed worker's
#: leases expire between rounds (the production default of 30s would
#: stall the whole drill waiting for reclaims).
DEFAULT_CHAOS_TTL = 3.0

#: Hard per-worker-process wall-clock bound (a wedged worker fails the
#: drill instead of hanging it).
WORKER_TIMEOUT = 180.0


@dataclass
class ChaosReport:
    """What one chaos drill did and whether the campaign survived it."""

    rounds: int = 0
    launches: int = 0              # worker processes started (incl. clean)
    kills: int = 0                 # workers that died at an injected point
    converged: bool = False        # every cell done at the end
    identical: bool = False        # result table == reference table
    duplicate_done: int = 0        # journal double-completions (counted,
    #                              # tolerated, reported)
    counts: dict[str, int] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.converged and self.identical

    def summary_line(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        text = (f"chaos {verdict}: {self.rounds} round(s), "
                f"{self.launches} worker launch(es), {self.kills} "
                f"injected kill(s), counts={self.counts}")
        if self.duplicate_done:
            text += f", {self.duplicate_done} duplicate completion(s)"
        if self.mismatches:
            text += f"; first mismatch: {self.mismatches[0]}"
        return text


def _result_table(campaign: Campaign) -> str:
    """The merged result table as a canonical string (the bitwise unit)."""
    lines = [f"{cell.label},{cell.cycles},{cell.ipc!r}"
             for cell in campaign.cells]
    return "\n".join(lines)


def _design_env(overrides: dict, scale: float) -> DesignEnv:
    """The same environment the worker CLIs compute for this design."""
    kwargs: dict = {"scale": scale}
    kwargs.update(overrides)
    return DesignEnv(**kwargs)


def _spawn_worker(design_file: Path, workdir: Path, *, worker_id: str,
                  lease_ttl: float, scale: float,
                  faults: str | None, faults_state: Path | None,
                  max_retries: int | None) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro.harness.cli",
               "--design", str(design_file), "--shard",
               "--campaign-dir", "camps", "--worker-id", worker_id,
               "--lease-ttl", str(lease_ttl), "--scale", str(scale)]
    if max_retries is not None:
        command += ["--max-retries", str(max_retries)]
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_SPEC, None)
    env.pop(ENV_STATE, None)
    if faults:
        env[ENV_SPEC] = faults
        env[ENV_STATE] = str(faults_state)
    return subprocess.Popen(command, cwd=workdir, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def run_chaos(design_path: str | Path, *, shards: int = 2,
              min_kills: int = 5, max_rounds: int = 12, seed: int = 7,
              root: str | Path = DEFAULT_CHAOS_ROOT, scale: float = 0.1,
              lease_ttl: float = DEFAULT_CHAOS_TTL,
              max_retries: int | None = None,
              kill_span: int = 4) -> ChaosReport:
    """Run the kill/restart drill against ``design_path``.

    Rounds of ``shards`` concurrent worker processes run until the
    campaign converges and at least ``min_kills`` workers have been
    killed at injected points.  Kill points are append ordinals in
    ``[0, kill_span]`` from ``random.Random(seed)`` — low ordinals, so
    workers die with cells genuinely in flight (ordinal 0 is the
    harshest: killed right after persisting the first claim, before any
    work).  Between rounds the
    drill waits out ``lease_ttl`` so the dead workers' leases expire and
    the next round exercises the reclaim path rather than spinning on
    live-looking claims.
    """
    started = time.monotonic()
    design_file = Path(design_path).resolve()
    design, overrides = load_design(design_file)
    env = _design_env(overrides, scale)
    rng = random.Random(seed)
    report = ChaosReport()

    workdir = Path(root)
    chaos_dir = workdir / "camps"
    ref_dir = workdir / "reference"
    workdir.mkdir(parents=True, exist_ok=True)

    # The ground truth: one unfaulted in-process worker, its own store,
    # its own cache — shares nothing with the drill but the design.
    reference = Campaign.open(design, env, root=ref_dir)
    ref_report = reference.run(cache=ResultCache(workdir / "ref-cache"),
                               worker_id="reference")
    if not ref_report.ok:
        report.mismatches.append("reference run itself failed; the design "
                                 "is not chaos-drill material")
        report.elapsed = time.monotonic() - started
        return report
    ref_table = _result_table(reference)

    def launch_round(*, kill: bool) -> None:
        procs = []
        for shard in range(shards):
            faults = None
            state: Path | None = None
            if kill:
                ordinal = rng.randint(0, kill_span)
                faults = f"kill-worker:{ordinal}"
                state = (workdir
                         / f"faults-r{report.rounds}-w{shard}")
            procs.append(_spawn_worker(
                design_file, workdir,
                worker_id=f"chaos-r{report.rounds}-w{shard}",
                lease_ttl=lease_ttl, scale=scale, faults=faults,
                faults_state=state, max_retries=max_retries))
            report.launches += 1
        for proc in procs:
            try:
                code = proc.wait(timeout=WORKER_TIMEOUT)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                report.mismatches.append("worker subprocess exceeded "
                                         f"{WORKER_TIMEOUT:.0f}s")
                continue
            if code == KILL_EXIT_CODE:
                report.kills += 1

    def survivors_done() -> bool:
        campaign = Campaign.open(design, env, root=chaos_dir)
        report.counts = campaign.counts()
        return all(cell.status == DONE for cell in campaign.cells)

    converged = False
    while report.rounds < max_rounds:
        report.rounds += 1
        launch_round(kill=True)
        converged = survivors_done()
        if converged and report.kills >= min_kills:
            break
        # Let the kills' leases expire so the next round reclaims
        # instead of bouncing off live-looking claims.
        time.sleep(lease_ttl)

    # One clean round: whatever the last kills dropped, a fault-free
    # worker must be able to finish — that is the resume contract.
    launch_round(kill=False)
    report.converged = survivors_done()

    final = Campaign.open(design, env, root=chaos_dir)
    state = final.refresh()
    report.duplicate_done = state.duplicate_done
    final_table = _result_table(final)
    report.identical = final_table == ref_table
    if report.converged and not report.identical:
        for ref_line, got_line in zip(ref_table.splitlines(),
                                      final_table.splitlines()):
            if ref_line != got_line:
                report.mismatches.append(f"expected {ref_line!r}, "
                                         f"got {got_line!r}")
                break
    elif not report.converged:
        stuck = [cell.label for cell in final.cells
                 if cell.status != DONE]
        report.mismatches.append(f"cells not done after "
                                 f"{report.rounds} round(s) + clean "
                                 f"round: {stuck}")
    report.elapsed = time.monotonic() - started
    return report


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.design.chaos",
        description="Kill/restart chaos drill for durable campaigns.")
    parser.add_argument("design", help="design file to drill (TOML/JSON)")
    parser.add_argument("--shards", type=int, default=2,
                        help="concurrent worker processes per round "
                             "(default 2)")
    parser.add_argument("--min-kills", type=int, default=5,
                        help="keep drilling until this many workers died "
                             "at injected points (default 5)")
    parser.add_argument("--max-rounds", type=int, default=12,
                        help="hard bound on kill/restart rounds "
                             "(default 12)")
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed for kill points (default 7)")
    parser.add_argument("--root", default=DEFAULT_CHAOS_ROOT,
                        help="working directory for the drill's stores "
                             f"(default {DEFAULT_CHAOS_ROOT}/)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="grid-size scale for the drilled design "
                             "(default 0.1)")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_CHAOS_TTL,
                        help="worker lease TTL in seconds "
                             f"(default {DEFAULT_CHAOS_TTL:g})")
    args = parser.parse_args(argv)
    report = run_chaos(args.design, shards=args.shards,
                       min_kills=args.min_kills, max_rounds=args.max_rounds,
                       seed=args.seed, root=args.root, scale=args.scale,
                       lease_ttl=args.lease_ttl)
    print(report.summary_line())
    print(f"[chaos: {report.elapsed:.1f}s, stores under {args.root}/]",
          file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":   # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
