"""Campaign-level chaos testing: kill workers until the campaign proves
itself.

The durability claims in :mod:`repro.design.campaign` are only worth
anything under fire, so this harness sets a real campaign on fire,
repeatedly: it launches ``shards`` concurrent ``repro-exp --design FILE
--shard`` worker *processes*, injects a ``kill-worker:K`` fault into
each (the worker dies with :data:`~repro.harness.faults.KILL_EXIT_CODE`
right after its K-th journal append, K drawn from a seeded RNG), then
restarts them, round after round, until the campaign converges.  A final
clean round (no faults) drains anything the last kills left behind.

The drill then asserts the whole point:

* **complete** — every cell is ``done``; none lost, none stuck;
* **exactly once** — the journal holds exactly one counted ``done`` per
  cell (duplicates from lease races are detected and reported);
* **bitwise-equal** — the result table (label, cycles, ipc per cell) is
  byte-for-byte identical to an unfaulted single-worker run of the same
  design in a separate store with a separate cache.

Run it directly (this is what ``make campaign-chaos-smoke`` does)::

    python -m repro.design.chaos examples/shard_demo.toml \\
        --shards 2 --min-kills 5 --seed 7 --root .repro-chaos

Everything is deterministic given ``--seed``: the kill points, the
worker ids, the round schedule.  Wall time is bounded by ``--max-rounds``
and a per-worker subprocess timeout.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..harness.cache import ResultCache
from ..harness.faults import ENV_SPEC, ENV_STATE, KILL_EXIT_CODE
from ..harness.jobs import SimJob
from .campaign import Campaign
from .env import DesignEnv
from .files import load_design
from .leases import DONE

#: Where a chaos drill keeps its stores unless told otherwise.
DEFAULT_CHAOS_ROOT = ".repro-chaos"

#: Lease TTL used by the drill: short enough that a killed worker's
#: leases expire between rounds (the production default of 30s would
#: stall the whole drill waiting for reclaims).
DEFAULT_CHAOS_TTL = 3.0

#: Hard per-worker-process wall-clock bound (a wedged worker fails the
#: drill instead of hanging it).
WORKER_TIMEOUT = 180.0


@dataclass
class ChaosReport:
    """What one chaos drill did and whether the campaign survived it."""

    rounds: int = 0
    launches: int = 0              # worker processes started (incl. clean)
    kills: int = 0                 # workers that died at an injected point
    converged: bool = False        # every cell done at the end
    identical: bool = False        # result table == reference table
    duplicate_done: int = 0        # journal double-completions (counted,
    #                              # tolerated, reported)
    counts: dict[str, int] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.converged and self.identical

    def summary_line(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        text = (f"chaos {verdict}: {self.rounds} round(s), "
                f"{self.launches} worker launch(es), {self.kills} "
                f"injected kill(s), counts={self.counts}")
        if self.duplicate_done:
            text += f", {self.duplicate_done} duplicate completion(s)"
        if self.mismatches:
            text += f"; first mismatch: {self.mismatches[0]}"
        return text


def _result_table(campaign: Campaign) -> str:
    """The merged result table as a canonical string (the bitwise unit)."""
    lines = [f"{cell.label},{cell.cycles},{cell.ipc!r}"
             for cell in campaign.cells]
    return "\n".join(lines)


def _design_env(overrides: dict, scale: float) -> DesignEnv:
    """The same environment the worker CLIs compute for this design."""
    kwargs: dict = {"scale": scale}
    kwargs.update(overrides)
    return DesignEnv(**kwargs)


def _spawn_worker(design_file: Path, workdir: Path, *, worker_id: str,
                  lease_ttl: float, scale: float,
                  faults: str | None, faults_state: Path | None,
                  max_retries: int | None) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro.harness.cli",
               "--design", str(design_file), "--shard",
               "--campaign-dir", "camps", "--worker-id", worker_id,
               "--lease-ttl", str(lease_ttl), "--scale", str(scale)]
    if max_retries is not None:
        command += ["--max-retries", str(max_retries)]
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_SPEC, None)
    env.pop(ENV_STATE, None)
    if faults:
        env[ENV_SPEC] = faults
        env[ENV_STATE] = str(faults_state)
    return subprocess.Popen(command, cwd=workdir, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def run_chaos(design_path: str | Path, *, shards: int = 2,
              min_kills: int = 5, max_rounds: int = 12, seed: int = 7,
              root: str | Path = DEFAULT_CHAOS_ROOT, scale: float = 0.1,
              lease_ttl: float = DEFAULT_CHAOS_TTL,
              max_retries: int | None = None,
              kill_span: int = 4) -> ChaosReport:
    """Run the kill/restart drill against ``design_path``.

    Rounds of ``shards`` concurrent worker processes run until the
    campaign converges and at least ``min_kills`` workers have been
    killed at injected points.  Kill points are append ordinals in
    ``[0, kill_span]`` from ``random.Random(seed)`` — low ordinals, so
    workers die with cells genuinely in flight (ordinal 0 is the
    harshest: killed right after persisting the first claim, before any
    work).  Between rounds the
    drill waits out ``lease_ttl`` so the dead workers' leases expire and
    the next round exercises the reclaim path rather than spinning on
    live-looking claims.
    """
    started = time.monotonic()
    design_file = Path(design_path).resolve()
    design, overrides = load_design(design_file)
    env = _design_env(overrides, scale)
    rng = random.Random(seed)
    report = ChaosReport()

    workdir = Path(root)
    chaos_dir = workdir / "camps"
    ref_dir = workdir / "reference"
    workdir.mkdir(parents=True, exist_ok=True)

    # The ground truth: one unfaulted in-process worker, its own store,
    # its own cache — shares nothing with the drill but the design.
    reference = Campaign.open(design, env, root=ref_dir)
    ref_report = reference.run(cache=ResultCache(workdir / "ref-cache"),
                               worker_id="reference")
    if not ref_report.ok:
        report.mismatches.append("reference run itself failed; the design "
                                 "is not chaos-drill material")
        report.elapsed = time.monotonic() - started
        return report
    ref_table = _result_table(reference)

    def launch_round(*, kill: bool) -> None:
        procs = []
        for shard in range(shards):
            faults = None
            state: Path | None = None
            if kill:
                ordinal = rng.randint(0, kill_span)
                faults = f"kill-worker:{ordinal}"
                state = (workdir
                         / f"faults-r{report.rounds}-w{shard}")
            procs.append(_spawn_worker(
                design_file, workdir,
                worker_id=f"chaos-r{report.rounds}-w{shard}",
                lease_ttl=lease_ttl, scale=scale, faults=faults,
                faults_state=state, max_retries=max_retries))
            report.launches += 1
        for proc in procs:
            try:
                code = proc.wait(timeout=WORKER_TIMEOUT)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                report.mismatches.append("worker subprocess exceeded "
                                         f"{WORKER_TIMEOUT:.0f}s")
                continue
            if code == KILL_EXIT_CODE:
                report.kills += 1

    def survivors_done() -> bool:
        campaign = Campaign.open(design, env, root=chaos_dir)
        report.counts = campaign.counts()
        return all(cell.status == DONE for cell in campaign.cells)

    converged = False
    while report.rounds < max_rounds:
        report.rounds += 1
        launch_round(kill=True)
        converged = survivors_done()
        if converged and report.kills >= min_kills:
            break
        # Let the kills' leases expire so the next round reclaims
        # instead of bouncing off live-looking claims.
        time.sleep(lease_ttl)

    # One clean round: whatever the last kills dropped, a fault-free
    # worker must be able to finish — that is the resume contract.
    launch_round(kill=False)
    report.converged = survivors_done()

    final = Campaign.open(design, env, root=chaos_dir)
    state = final.refresh()
    report.duplicate_done = state.duplicate_done
    final_table = _result_table(final)
    report.identical = final_table == ref_table
    if report.converged and not report.identical:
        for ref_line, got_line in zip(ref_table.splitlines(),
                                      final_table.splitlines()):
            if ref_line != got_line:
                report.mismatches.append(f"expected {ref_line!r}, "
                                         f"got {got_line!r}")
                break
    elif not report.converged:
        stuck = [cell.label for cell in final.cells
                 if cell.status != DONE]
        report.mismatches.append(f"cells not done after "
                                 f"{report.rounds} round(s) + clean "
                                 f"round: {stuck}")
    report.elapsed = time.monotonic() - started
    return report


# --------------------------------------------------------------------------- #
# Service chaos: the same contract, one level up the stack
# --------------------------------------------------------------------------- #

#: Where the service drill keeps its state unless told otherwise.
DEFAULT_SERVICE_CHAOS_ROOT = ".repro-service-chaos"

#: Overall wall-clock bound on one service drill.
SERVICE_DRILL_TIMEOUT = 300.0

#: Seed offset that makes the poison job's fingerprint distinct from
#: every real cell (same benchmark, an otherwise-unused seed).
_POISON_SEED = 99991


@dataclass
class ServiceChaosReport:
    """What one service drill did and whether ``repro-serve`` survived."""

    incarnations: int = 0          # daemon processes started
    daemon_kills: int = 0          # SIGKILLs delivered to the daemon
    worker_kill_faults: int = 0    # injected in-worker kill points
    converged: bool = False        # every design cell reached ``done``
    identical: bool = False        # cache table == fault-free reference
    exactly_once: bool = False     # one terminal record per accepted job
    poison_quarantined: bool = False
    drain_clean: bool = False      # final SIGTERM drain exited 0
    shed_seen: bool = False        # admission.shed in the event journal
    breaker_seen: bool = False     # breaker.open in the event journal
    counts: dict[str, int] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return (self.converged and self.identical and self.exactly_once
                and self.poison_quarantined and self.drain_clean
                and self.shed_seen and self.breaker_seen)

    def summary_line(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        flags = [name for name, value in (
            ("converged", self.converged), ("identical", self.identical),
            ("exactly-once", self.exactly_once),
            ("poison-quarantined", self.poison_quarantined),
            ("drain-clean", self.drain_clean), ("shed", self.shed_seen),
            ("breaker", self.breaker_seen)) if not value]
        text = (f"service chaos {verdict}: {self.incarnations} daemon "
                f"incarnation(s), {self.daemon_kills} daemon kill(s), "
                f"{self.worker_kill_faults} worker kill fault(s), "
                f"counts={self.counts}")
        if flags:
            text += f"; failed checks: {', '.join(flags)}"
        if self.mismatches:
            text += f"; first mismatch: {self.mismatches[0]}"
        return text


def run_service_chaos(design_path: str | Path, *, daemon_kills: int = 2,
                      seed: int = 7,
                      root: str | Path = DEFAULT_SERVICE_CHAOS_ROOT,
                      scale: float = 0.02, workers: int = 2,
                      queue_depth: int = 3, breaker_threshold: int = 2,
                      hb_timeout: float = 1.5,
                      kill_window: tuple[float, float] = (1.5, 3.5),
                      ) -> ServiceChaosReport:
    """SIGKILL/restart drill against a live ``repro-serve`` daemon.

    The service analogue of :func:`run_chaos`: a fault-free in-process
    run of the design is the reference; then a daemon is started with a
    poison job wedging at dispatch ordinal 0, in-worker ``kill:K``
    faults on seeded ordinals, a seeded daemon-side ``socket-drop``, a
    tight queue bound (so concurrent clients *must* get shed), and two
    concurrent client threads submitting the same design under
    different tenants.  The daemon is SIGKILLed and restarted
    ``daemon_kills`` times mid-flight, then SIGTERM-drained.  The drill
    passes only if every accepted job reached exactly one terminal
    state, every design cell's cached result is bitwise-identical to
    the reference, the poison job was quarantined by the circuit
    breaker (never stalling the real cells), sheds and the breaker
    opening are visible in the durable event journal, and the final
    drain exited 0.
    """
    import threading

    from ..service.audit import audit_state_dirs
    from ..service.client import ServiceClient, ServiceError
    from ..service.protocol import DONE as DONE_STATE
    from ..service.protocol import QUARANTINED, QUEUED, TERMINAL, job_id

    started = time.monotonic()
    deadline = started + SERVICE_DRILL_TIMEOUT
    design_file = Path(design_path).resolve()
    design, overrides = load_design(design_file)
    env = _design_env(overrides, scale)
    rng = random.Random(seed)
    report = ServiceChaosReport()

    workdir = Path(root)
    state_dir = workdir / "state"
    cache_dir = workdir / "cache"
    faults_state = workdir / "faults-state"
    sock = state_dir / "serve.sock"
    log_path = workdir / "daemon.log"
    for directory in (workdir, faults_state):
        directory.mkdir(parents=True, exist_ok=True)

    cells = design.compile(env)
    digest = design.digest(env)

    # Ground truth: the same jobs, in process, no service, no faults.
    ref_lines = {}
    for cell in cells:
        result = cell.job.execute()
        ref_lines[cell.label] = f"{cell.label},{result.cycles},{result.ipc!r}"

    # The poison job: first submission (dispatch ordinal 0), a
    # fingerprint no real cell shares, wedged on *every* attempt.
    poison_job = SimJob.from_payload(
        {**cells[0].job.to_payload(), "seed": _POISON_SEED})
    poison_id = "poison:0"

    # Fault plan, shared by every daemon incarnation (marker files in
    # ``faults_state`` keep once-semantics across restarts): the wedge,
    # one in-worker SIGKILL per seeded ordinal, one dropped socket frame.
    kill_ordinals = rng.sample(range(1, len(cells) + 1),
                               k=min(2, len(cells)))
    report.worker_kill_faults = len(kill_ordinals)
    spec = ",".join(["worker-wedge:0"]
                    + [f"kill:{ordinal}" for ordinal in kill_ordinals]
                    + [f"socket-drop:{rng.randint(3, 9)}"])

    def start_daemon() -> subprocess.Popen:
        report.incarnations += 1
        trace = workdir / f"trace-{report.incarnations}.json"
        command = [sys.executable, "-m", "repro.service.daemon",
                   "--state-dir", str(state_dir),
                   "--cache-dir", str(cache_dir),
                   "--socket", str(sock),
                   "--workers", str(workers),
                   "--queue-depth", str(queue_depth),
                   "--breaker-threshold", str(breaker_threshold),
                   "--hb-timeout", str(hb_timeout),
                   "--drain-grace", "30",
                   "--trace", str(trace)]
        env_vars = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        env_vars["PYTHONPATH"] = (src_dir + os.pathsep
                                  + env_vars.get("PYTHONPATH", ""))
        env_vars[ENV_SPEC] = spec
        env_vars[ENV_STATE] = str(faults_state)
        with open(log_path, "ab") as log:
            return subprocess.Popen(command, env=env_vars, stdout=log,
                                    stderr=log)

    def new_client(**kwargs) -> "ServiceClient":
        from ..harness.engine import Backoff
        return ServiceClient(sock, connect_attempts=25,
                             backoff=Backoff(base=0.2, cap=1.0), **kwargs)

    give_up = threading.Event()
    client_results: dict[str, dict[str, dict]] = {}
    client_errors: list[str] = []

    def client_loop(tenant: str) -> None:
        """Submit every cell and watch to terminal, riding out daemon
        kills, sheds and dropped frames; idempotent ids do the rest."""
        pending = {job_id(digest, cell.index): cell.job.to_payload()
                   for cell in cells}
        terminal: dict[str, dict] = {}
        while pending and not give_up.is_set():
            client = new_client()
            try:
                for cid, payload in list(pending.items()):
                    response = client.submit(cid, payload, tenant=tenant,
                                             shed_retries=50)
                    state = response.get("state")
                    if state in TERMINAL:
                        terminal[cid] = response
                        del pending[cid]
                if pending:
                    for cid, frame in client.watch(list(pending)).items():
                        if frame.get("state") in TERMINAL:
                            terminal[cid] = frame
                            pending.pop(cid, None)
            except (ServiceError, OSError, ValueError) as error:
                client_errors.append(f"{tenant}: {error}")
                time.sleep(0.3)
            finally:
                client.close()
        client_results[tenant] = terminal

    daemon = start_daemon()
    threads: list[threading.Thread] = []
    try:
        # Poison goes in first so it owns dispatch ordinal 0 (the
        # ordinal is journaled with the submit, so it survives every
        # restart and the wedge fault keeps firing on re-dispatch).
        poison_client = new_client()
        try:
            response = poison_client.submit(poison_id,
                                            poison_job.to_payload(),
                                            tenant="poison")
            if response.get("state") not in (QUEUED, QUARANTINED):
                report.mismatches.append(
                    f"poison submit answered {response!r}")
        finally:
            poison_client.close()

        threads = [threading.Thread(target=client_loop, args=(tenant,),
                                    name=f"chaos-client-{tenant}",
                                    daemon=True)
                   for tenant in ("alice", "bob")]
        for thread in threads:
            thread.start()

        for _ in range(daemon_kills):
            time.sleep(rng.uniform(*kill_window))
            daemon.kill()                       # SIGKILL: no goodbyes
            daemon.wait()
            report.daemon_kills += 1
            time.sleep(0.3)
            daemon = start_daemon()

        for thread in threads:
            thread.join(timeout=max(deadline - time.monotonic(), 1.0))
        if any(thread.is_alive() for thread in threads):
            give_up.set()
            report.mismatches.append("client thread(s) still waiting at "
                                     "the drill deadline")

        # The poison job must reach quarantine without our help (the
        # journal re-queues it across restarts); poll, bounded.
        while time.monotonic() < deadline:
            try:
                status_client = new_client()
                try:
                    state = status_client.result(poison_id).get("state")
                finally:
                    status_client.close()
            except (ServiceError, OSError, ValueError):
                state = None
            if state == QUARANTINED:
                break
            time.sleep(0.5)

        # Graceful drain: SIGTERM, exit 0, snapshot written.
        daemon.terminate()
        try:
            report.drain_clean = daemon.wait(timeout=60.0) == 0
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait()
            report.mismatches.append("daemon ignored SIGTERM for 60s")
    finally:
        give_up.set()
        if daemon.poll() is None:   # pragma: no cover - cleanup path
            daemon.kill()
            daemon.wait()

    # ---------------- offline audit: the journal is the truth ---------- #
    audit = audit_state_dirs([state_dir])
    report.exactly_once = audit.strict_exactly_once
    if audit.missing:
        report.mismatches.append(f"accepted without terminal state: "
                                 f"{audit.missing}")
    doubled = {rid: sorted(audit.states_of(rid))
               for rid in audit.jobs
               if audit.jobs[rid].duplicates}
    if doubled:
        report.mismatches.append(f"multiple terminal records: {doubled}")
    poison = audit.jobs.get(poison_id)
    report.poison_quarantined = (poison is not None
                                 and poison.states == {"quarantined"}
                                 and len(poison.executed) == 1)
    poison_ordinal = (int(poison.ordinals[0] or 0)
                      if poison is not None and poison.ordinals else None)
    if poison_ordinal != 0:
        report.mismatches.append(
            f"poison job got ordinal {poison_ordinal!r}, not 0")
        report.poison_quarantined = False

    design_ids = {job_id(digest, cell.index): cell for cell in cells}
    done_ids = {rid for rid in audit.jobs
                if DONE_STATE in audit.states_of(rid)}
    report.converged = set(design_ids) <= done_ids
    report.counts = {"done": len(done_ids & set(design_ids)),
                     "cells": len(design_ids),
                     "accepted": sum(1 for job in audit.jobs.values()
                                     if job.accepted_in)}
    if not report.converged:
        stuck = sorted(set(design_ids) - done_ids)
        report.mismatches.append(f"design cells not done: {stuck}")

    cache = ResultCache(cache_dir)
    report.identical = True
    for cid, cell in sorted(design_ids.items(),
                            key=lambda item: item[1].index):
        result = cache.get(cell.job.fingerprint())
        if result is None:
            report.identical = False
            report.mismatches.append(f"no cached result for {cell.label}")
            continue
        got = f"{cell.label},{result.cycles},{result.ipc!r}"
        if got != ref_lines[cell.label]:
            report.identical = False
            report.mismatches.append(f"expected {ref_lines[cell.label]!r}, "
                                     f"got {got!r}")

    kinds_seen = audit.event_kinds()
    report.shed_seen = "admission.shed" in kinds_seen
    report.breaker_seen = "breaker.open" in kinds_seen
    if not report.shed_seen:
        report.mismatches.append("no admission.shed event was journaled")
    if not report.breaker_seen:
        report.mismatches.append("breaker.open never appeared in events")

    # The drained incarnation also wrote its trace lane; it must parse.
    trace_file = workdir / f"trace-{report.incarnations}.json"
    if report.drain_clean:
        try:
            json.loads(trace_file.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            report.drain_clean = False
            report.mismatches.append(f"drained incarnation's trace is "
                                     f"unusable: {error}")

    report.elapsed = time.monotonic() - started
    return report


# --------------------------------------------------------------------------- #
# Cluster chaos: SIGKILL a federated daemon mid-partition
# --------------------------------------------------------------------------- #

#: Where the cluster drill keeps its state unless told otherwise.
DEFAULT_CLUSTER_CHAOS_ROOT = ".repro-cluster-chaos"

#: Overall wall-clock bound on one cluster drill.
CLUSTER_DRILL_TIMEOUT = 300.0


@dataclass
class ClusterChaosReport:
    """What one federation drill did and whether the fleet survived."""

    daemons: int = 0               # fleet size
    victim: int = -1               # SIGKILLed daemon's node index
    daemon_kills: int = 0
    expected_reclaim: bool = False  # rendezvous says node 0 must adopt
    converged: bool = False        # every design cell done fleet-wide
    identical: bool = False        # cache table == fault-free reference
    effectively_once: bool = False  # audit: nothing lost, nothing split
    reclaim_seen: bool = False     # adopted_from / cluster.reclaim found
    poison_quarantined: bool = False
    quarantine_propagated: bool = False   # breaker.sync beyond node 0
    partition_seen: bool = False   # peer.dead + cluster.degraded events
    drain_clean: bool = False      # surviving daemons SIGTERM-exited 0
    duplicates: int = 0            # agreeing duplicate executions (ok)
    adopted: int = 0
    counts: dict[str, int] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return (self.converged and self.identical
                and self.effectively_once and self.poison_quarantined
                and self.quarantine_propagated and self.partition_seen
                and self.drain_clean
                and (self.reclaim_seen or not self.expected_reclaim))

    def summary_line(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        flags = [name for name, value in (
            ("converged", self.converged), ("identical", self.identical),
            ("effectively-once", self.effectively_once),
            ("reclaim", self.reclaim_seen or not self.expected_reclaim),
            ("poison-quarantined", self.poison_quarantined),
            ("quarantine-propagated", self.quarantine_propagated),
            ("partition", self.partition_seen),
            ("drain-clean", self.drain_clean)) if not value]
        text = (f"cluster chaos {verdict}: {self.daemons} daemon(s), "
                f"victim node {self.victim}, {self.adopted} adopted "
                f"job(s), {self.duplicates} duplicate execution(s), "
                f"counts={self.counts}")
        if flags:
            text += f"; failed checks: {', '.join(flags)}"
        if self.mismatches:
            text += f"; first mismatch: {self.mismatches[0]}"
        return text


def run_cluster_chaos(design_path: str | Path, *, seed: int = 7,
                      root: str | Path = DEFAULT_CLUSTER_CHAOS_ROOT,
                      scale: float = 0.02, workers: int = 2,
                      breaker_threshold: int = 2,
                      gossip_interval: float = 0.25, peer_ttl: float = 1.0,
                      partition_rounds: int = 12,
                      kill_after: float = 2.0) -> ClusterChaosReport:
    """SIGKILL + partition drill against a three-daemon federation.

    The fleet: three ``repro-serve`` daemons peered over unix sockets,
    sharing one result cache, each with its own state dir and journal.
    The storm: a seeded ``partition:0-V|M:R`` fault splits the victim's
    side from the minority from boot, node 0 carries the wedged poison
    job (pinned, dispatch ordinal 0), the victim's first jobs are
    slowed by ``delay`` faults so they are genuinely in flight when it
    is SIGKILLed mid-partition — and never restarted.  Two client
    threads submit the same design across the full ``--peers`` list
    throughout, riding sheds (the quorum-less minority *must* refuse)
    and the total-outage window between the kill and the heal.

    The victim is chosen so rendezvous hashing makes node 0 the
    post-mortem owner of at least one of its jobs when possible
    (``expected_reclaim``): after the partition heals, node 0 and the
    minority re-form a majority, declare the victim dead, and node 0
    must adopt and re-execute those jobs from its replicated
    ``cluster-job`` records.  The offline audit
    (:func:`repro.service.audit.audit_state_dirs`) then folds all three
    journals: nothing lost, nothing conflicting (agreeing duplicates
    from client takeover are counted, not failed), every design cell
    bitwise-identical to a fault-free in-process run, the poison
    quarantined on node 0 and synced to the minority's breaker, and the
    survivors' SIGTERM drains clean.
    """
    import threading

    from ..service.audit import audit_state_dirs
    from ..service.client import ServiceClient, ServiceError
    from ..service.cluster import rendezvous_owner
    from ..service.protocol import DONE as DONE_STATE
    from ..service.protocol import QUARANTINED, TERMINAL, job_id

    started = time.monotonic()
    deadline = started + CLUSTER_DRILL_TIMEOUT
    design_file = Path(design_path).resolve()
    design, overrides = load_design(design_file)
    env = _design_env(overrides, scale)
    rng = random.Random(seed)
    report = ClusterChaosReport(daemons=3)

    workdir = Path(root)
    cache_dir = workdir / "cache"
    workdir.mkdir(parents=True, exist_ok=True)
    state_dirs = [workdir / f"state-{node}" for node in range(3)]
    sockets = [state_dirs[node] / "serve.sock" for node in range(3)]
    addrs = [str(sock) for sock in sockets]

    cells = design.compile(env)
    digest = design.digest(env)
    fingerprints = [cell.job.fingerprint() for cell in cells]

    # Ground truth: the same jobs, in process, no fleet, no faults.
    ref_lines = {}
    for cell in cells:
        result = cell.job.execute()
        ref_lines[cell.label] = f"{cell.label},{result.cycles},{result.ipc!r}"

    poison_job = SimJob.from_payload(
        {**cells[0].job.to_payload(), "seed": _POISON_SEED})
    poison_id = "poison:0"

    # Pick the victim from {1, 2} so that, where the fingerprints allow
    # it, at least one job the partition routes to the victim (owner by
    # rendezvous over the {0, victim} pair) re-hashes to node 0 over the
    # post-mortem survivor pair {0, minority} — the deterministic
    # reclaim this drill exists to prove.
    def reclaimable(victim: int) -> int:
        minority = 3 - victim
        return sum(
            1 for fp in fingerprints
            if rendezvous_owner(fp, [addrs[0], addrs[victim]])
            == addrs[victim]
            and rendezvous_owner(fp, [addrs[0], addrs[minority]])
            == addrs[0])

    report.victim = max((1, 2), key=reclaimable)
    victim, minority = report.victim, 3 - report.victim
    report.expected_reclaim = reclaimable(victim) > 0
    partition = (f"partition:0-{victim}|{minority}:{partition_rounds}")
    # The victim's first few dispatches sleep long enough to still be
    # in flight at the SIGKILL (the heartbeat thread keeps beating, so
    # this is slowness, not a wedge).
    slow = ",".join(f"delay:{ordinal}:6" for ordinal in range(3))
    specs = {0: f"worker-wedge:0,{partition}",
             victim: f"{slow},{partition}",
             minority: partition}

    def start_daemon(node: int) -> subprocess.Popen:
        state_dirs[node].mkdir(parents=True, exist_ok=True)
        command = [sys.executable, "-m", "repro.service.daemon",
                   "--state-dir", str(state_dirs[node]),
                   "--cache-dir", str(cache_dir),
                   "--socket", addrs[node],
                   "--cluster", ",".join(addrs),
                   "--advertise", addrs[node],
                   "--gossip-interval", str(gossip_interval),
                   "--peer-ttl", str(peer_ttl),
                   "--workers", str(workers),
                   "--breaker-threshold", str(breaker_threshold),
                   "--hb-timeout", "1.0",
                   "--drain-grace", "30"]
        env_vars = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        env_vars["PYTHONPATH"] = (src_dir + os.pathsep
                                  + env_vars.get("PYTHONPATH", ""))
        env_vars[ENV_SPEC] = specs[node]
        env_vars[ENV_STATE] = str(workdir / f"faults-state-{node}")
        log = open(workdir / f"daemon-{node}.log", "ab")
        try:
            return subprocess.Popen(command, env=env_vars, stdout=log,
                                    stderr=log)
        finally:
            log.close()

    give_up = threading.Event()
    client_errors: list[str] = []
    terminal_states: dict[str, dict] = {}
    terminal_lock = threading.Lock()

    def client_loop(tenant: str) -> None:
        """Poll-submit every cell across the peer list until terminal.

        Submission is the probe *and* the takeover trigger: idempotent
        ids make re-submission safe everywhere, and re-submitting a
        dead daemon's job to a survivor is exactly the client-side
        failover the fleet promises to absorb.
        """
        pending = {job_id(digest, cell.index): cell.job.to_payload()
                   for cell in cells}
        client = ServiceClient(peers=addrs, timeout=10.0,
                               connect_attempts=25,
                               jitter_key=f"cluster-chaos-{tenant}")
        try:
            while pending and not give_up.is_set():
                progressed = False
                for cid, payload in list(pending.items()):
                    try:
                        response = client.submit(cid, payload,
                                                 tenant=tenant,
                                                 shed_retries=3)
                    except (ServiceError, OSError, ValueError) as error:
                        client_errors.append(f"{tenant}: {error}")
                        time.sleep(0.3)
                        continue
                    if response.get("state") in TERMINAL:
                        with terminal_lock:
                            terminal_states[cid] = response
                        del pending[cid]
                        progressed = True
                if pending and not progressed:
                    time.sleep(0.5)
        finally:
            client.close()

    daemons: dict[int, subprocess.Popen] = {}
    threads: list[threading.Thread] = []
    try:
        for node in range(3):
            daemons[node] = start_daemon(node)

        # Poison first: pinned to node 0 so it takes dispatch ordinal 0
        # there (where worker-wedge:0 lives) and is never routed away.
        poison_client = ServiceClient(sockets[0], connect_attempts=25)
        try:
            response = poison_client.submit(
                poison_id, poison_job.to_payload(), tenant="poison",
                pin=True)
            if not response.get("ok"):
                report.mismatches.append(
                    f"poison submit answered {response!r}")
        finally:
            poison_client.close()

        # Routing only spreads once gossip has met the majority-side
        # peer (an unmet peer is not in the rendezvous set), and the
        # whole drill rests on the victim owning jobs when it dies —
        # so hold the clients until node 0 reports the victim UP.
        victim_met = False
        while time.monotonic() < started + 15.0:
            try:
                status_client = ServiceClient(sockets[0],
                                              connect_attempts=5)
                try:
                    view = status_client.status().get("cluster") or {}
                finally:
                    status_client.close()
            except (ServiceError, OSError, ValueError):
                view = {}
            victim_met = any(peer.get("addr") == addrs[victim]
                             and peer.get("state") == "up"
                             for peer in view.get("peers") or [])
            if victim_met:
                break
            time.sleep(0.1)
        if not victim_met:
            report.mismatches.append("node 0 never saw the victim UP — "
                                     "gossip is not running")

        threads = [threading.Thread(target=client_loop, args=(tenant,),
                                    name=f"cluster-client-{tenant}",
                                    daemon=True)
                   for tenant in ("alice", "bob")]
        for thread in threads:
            thread.start()

        # Mid-partition murder: the victim dies with slowed jobs in
        # flight and never comes back — handoff or bust.
        time.sleep(kill_after + rng.uniform(0.0, 0.5))
        daemons[victim].kill()
        daemons[victim].wait()
        report.daemon_kills += 1

        for thread in threads:
            thread.join(timeout=max(deadline - time.monotonic(), 1.0))
        if any(thread.is_alive() for thread in threads):
            give_up.set()
            report.mismatches.append("client thread(s) still waiting at "
                                     "the drill deadline")

        # The poison must quarantine on node 0 without help; poll.
        while time.monotonic() < deadline:
            try:
                status_client = ServiceClient(sockets[0],
                                              connect_attempts=5)
                try:
                    state = status_client.result(poison_id).get("state")
                finally:
                    status_client.close()
            except (ServiceError, OSError, ValueError):
                state = None
            if state == QUARANTINED:
                break
            time.sleep(0.5)

        # Give gossip a moment to sync the quarantine to the minority,
        # then drain the survivors gracefully.
        time.sleep(4 * gossip_interval)
        report.drain_clean = True
        for node in (0, minority):
            daemons[node].terminate()
        for node in (0, minority):
            try:
                if daemons[node].wait(timeout=60.0) != 0:
                    report.drain_clean = False
                    report.mismatches.append(
                        f"daemon {node} drained with exit "
                        f"{daemons[node].returncode}")
            except subprocess.TimeoutExpired:
                daemons[node].kill()
                daemons[node].wait()
                report.drain_clean = False
                report.mismatches.append(
                    f"daemon {node} ignored SIGTERM for 60s")
    finally:
        give_up.set()
        for proc in daemons.values():
            if proc.poll() is None:   # pragma: no cover - cleanup path
                proc.kill()
                proc.wait()

    # -------- offline audit: every journal, one fleet-wide verdict ----- #
    audit = audit_state_dirs(state_dirs)
    report.effectively_once = audit.effectively_once
    report.duplicates = audit.duplicates
    report.adopted = len(audit.adopted)
    if audit.missing:
        report.mismatches.append(f"jobs lost fleet-wide: {audit.missing}")
    if audit.conflicting:
        report.mismatches.append(
            f"conflicting terminals: {audit.conflicting}")
    report.mismatches.extend(audit.problems)

    design_ids = {job_id(digest, cell.index): cell for cell in cells}
    done_ids = {rid for rid in design_ids
                if DONE_STATE in audit.states_of(rid)}
    report.converged = set(design_ids) <= done_ids
    report.counts = {"done": len(done_ids), "cells": len(design_ids),
                     "jobs": len(audit.jobs), "adopted": report.adopted}
    if not report.converged:
        report.mismatches.append(
            f"design cells not done fleet-wide: "
            f"{sorted(set(design_ids) - done_ids)}")

    cache = ResultCache(cache_dir)
    report.identical = True
    for cid, cell in sorted(design_ids.items(),
                            key=lambda item: item[1].index):
        result = cache.get(cell.job.fingerprint())
        if result is None:
            report.identical = False
            report.mismatches.append(f"no cached result for {cell.label}")
            continue
        got = f"{cell.label},{result.cycles},{result.ipc!r}"
        if got != ref_lines[cell.label]:
            report.identical = False
            report.mismatches.append(f"expected {ref_lines[cell.label]!r}, "
                                     f"got {got!r}")

    poison = audit.jobs.get(poison_id)
    report.poison_quarantined = (
        poison is not None and poison.states == {QUARANTINED}
        and audit.executed_dirs(poison_id) == [state_dirs[0].name])
    if poison is not None and poison.ordinals[:1] != [0]:
        report.mismatches.append(
            f"poison job got ordinal {poison.ordinals!r}, not 0")
        report.poison_quarantined = False

    report.reclaim_seen = bool(audit.adopted) \
        or "cluster.reclaim" in audit.event_kinds()
    if report.expected_reclaim and not report.reclaim_seen:
        report.mismatches.append("no job was adopted from the dead "
                                 "victim despite rendezvous demanding it")
    other_kinds: set[str] = set()
    for name, kinds in audit.events.items():
        if name != state_dirs[0].name:
            other_kinds |= kinds
    report.quarantine_propagated = "breaker.sync" in other_kinds
    report.partition_seen = ("peer.dead" in audit.event_kinds()
                             and "cluster.degraded" in audit.event_kinds())
    if not report.quarantine_propagated:
        report.mismatches.append("breaker.sync never reached a survivor")
    if not report.partition_seen:
        report.mismatches.append("no peer.dead/cluster.degraded events — "
                                 "the partition never bit")

    report.elapsed = time.monotonic() - started
    return report


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.design.chaos",
        description="Kill/restart chaos drills: durable campaigns "
                    "(default) or the repro-serve daemon (--service).")
    parser.add_argument("design", help="design file to drill (TOML/JSON)")
    parser.add_argument("--service", action="store_true",
                        help="drill the scheduler daemon instead of the "
                             "campaign store (daemon SIGKILLs, worker "
                             "kills, a wedged poison job, socket drops, "
                             "concurrent clients)")
    parser.add_argument("--cluster", action="store_true",
                        help="drill a three-daemon federation: a seeded "
                             "partition, a SIGKILLed (never restarted) "
                             "victim, lease-based job handoff, a pinned "
                             "poison job, offline all-journal audit")
    parser.add_argument("--partition-rounds", type=int, default=12,
                        help="[--cluster] gossip rounds before the "
                             "injected partition heals (default 12)")
    parser.add_argument("--gossip-interval", type=float, default=0.25,
                        help="[--cluster] fleet gossip interval in "
                             "seconds (default 0.25)")
    parser.add_argument("--peer-ttl", type=float, default=1.0,
                        help="[--cluster] peer suspicion TTL in seconds "
                             "(default 1.0)")
    parser.add_argument("--daemon-kills", type=int, default=2,
                        help="[--service] SIGKILL/restart cycles "
                             "(default 2)")
    parser.add_argument("--workers", type=int, default=2,
                        help="[--service] supervised pool size (default 2)")
    parser.add_argument("--queue-depth", type=int, default=3,
                        help="[--service] admission bound; small enough "
                             "that the clients get shed (default 3)")
    parser.add_argument("--shards", type=int, default=2,
                        help="concurrent worker processes per round "
                             "(default 2)")
    parser.add_argument("--min-kills", type=int, default=5,
                        help="keep drilling until this many workers died "
                             "at injected points (default 5)")
    parser.add_argument("--max-rounds", type=int, default=12,
                        help="hard bound on kill/restart rounds "
                             "(default 12)")
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed for kill points (default 7)")
    parser.add_argument("--root", default=DEFAULT_CHAOS_ROOT,
                        help="working directory for the drill's stores "
                             f"(default {DEFAULT_CHAOS_ROOT}/)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="grid-size scale for the drilled design "
                             "(default 0.1)")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_CHAOS_TTL,
                        help="worker lease TTL in seconds "
                             f"(default {DEFAULT_CHAOS_TTL:g})")
    args = parser.parse_args(argv)
    if args.cluster:
        cluster_report = run_cluster_chaos(
            args.design, seed=args.seed,
            root=args.root if args.root != DEFAULT_CHAOS_ROOT
            else DEFAULT_CLUSTER_CHAOS_ROOT,
            scale=args.scale, workers=args.workers,
            gossip_interval=args.gossip_interval, peer_ttl=args.peer_ttl,
            partition_rounds=args.partition_rounds)
        print(cluster_report.summary_line())
        root = (args.root if args.root != DEFAULT_CHAOS_ROOT
                else DEFAULT_CLUSTER_CHAOS_ROOT)
        print(f"[cluster chaos: {cluster_report.elapsed:.1f}s, state "
              f"under {root}/]", file=sys.stderr)
        return 0 if cluster_report.ok else 1
    if args.service:
        service_report = run_service_chaos(
            args.design, daemon_kills=args.daemon_kills, seed=args.seed,
            root=args.root if args.root != DEFAULT_CHAOS_ROOT
            else DEFAULT_SERVICE_CHAOS_ROOT,
            scale=args.scale, workers=args.workers,
            queue_depth=args.queue_depth)
        print(service_report.summary_line())
        print(f"[service chaos: {service_report.elapsed:.1f}s, state under "
              f"{args.root if args.root != DEFAULT_CHAOS_ROOT else DEFAULT_SERVICE_CHAOS_ROOT}/]",
              file=sys.stderr)
        return 0 if service_report.ok else 1
    report = run_chaos(args.design, shards=args.shards,
                       min_kills=args.min_kills, max_rounds=args.max_rounds,
                       seed=args.seed, root=args.root, scale=args.scale,
                       lease_ttl=args.lease_ttl)
    print(report.summary_line())
    print(f"[chaos: {report.elapsed:.1f}s, stores under {args.root}/]",
          file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":   # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
