"""The compile environment: what a design needs to become jobs.

A :class:`DesignEnv` carries everything about *how* a campaign runs that is
not part of the experimental design itself — grid scale, workload seed, the
baseline hardware configuration, telemetry riders and the simulator
backend.  Separating it from :class:`~repro.design.design.Design` is what
makes designs reusable: the same factorial declaration compiles to the
quick smoke matrix at ``scale=0.02`` and to the full evaluation at
``scale=1.0`` without being rewritten.

:func:`build_job` is the single job-construction path shared by the design
layer and :class:`~repro.harness.experiments.ExperimentContext` — both
produce byte-identical :class:`~repro.harness.jobs.SimJob` descriptions
(including the vector-backend fallback for warp schedulers the vector core
does not implement), which is what keeps design-compiled campaigns and
hand-driven experiments in the same result-cache universe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..harness.jobs import SimJob
from ..sim.config import GPUConfig
from ..sim.vector import vector_supported
from ..workloads.patterns import DEFAULT_SEED
from ..workloads.suite import make_kernel


def build_job(*, names: str | Sequence[str], scale: float, seed: int,
              config: GPUConfig, warp: str | tuple = "gto",
              policy: tuple = ("rr",),
              scale_mults: Sequence[float] | None = None,
              timeline_window: int | None = None, trace: bool = False,
              backend: str = "object") -> SimJob:
    """The one true :class:`SimJob` constructor for declarative layers.

    Applies the vector-backend fallback: warp schedulers the vector core
    does not implement (two-level, swl) run on the object core.  Results
    are bitwise-identical either way, so tables and fingerprints are
    unaffected.
    """
    if isinstance(names, str):
        names = (names,)
    if backend == "vector" and not vector_supported(warp):
        backend = "object"
    return SimJob(names=tuple(names), scale=scale, seed=seed,
                  scale_mults=(tuple(scale_mults)
                               if scale_mults is not None else None),
                  warp=warp, policy=policy, config=config,
                  timeline_window=timeline_window, trace=trace,
                  backend=backend)


@dataclass
class DesignEnv:
    """Scale/seed/hardware/rider bindings for one design compilation."""

    scale: float = 0.4
    seed: int = DEFAULT_SEED
    config: GPUConfig = field(default_factory=GPUConfig)
    timeline_window: int | None = None
    trace: bool = False
    backend: str = "object"
    _occupancy: dict[tuple, int] = field(default_factory=dict, repr=False)

    def occupancy(self, name: str,
                  config: GPUConfig | None = None) -> int:
        """Resident-CTA limit of one suite kernel (memoised; used by
        nested factors such as static-limit sweeps)."""
        config = config if config is not None else self.config
        key = (name, config)
        cached = self._occupancy.get(key)
        if cached is None:
            kernel = make_kernel(name, scale=self.scale, seed=self.seed)
            cached = kernel.max_ctas_per_sm(config)
            self._occupancy[key] = cached
        return cached

    def job(self, names: str | Sequence[str], *,
            warp: str | tuple = "gto", policy: tuple = ("rr",),
            scale_mults: Sequence[float] | None = None,
            config: GPUConfig | None = None) -> SimJob:
        """One job under this environment (``config`` overrides the
        baseline hardware for per-cell hardware factors)."""
        return build_job(names=names, scale=self.scale, seed=self.seed,
                         config=config if config is not None else self.config,
                         warp=warp, policy=policy, scale_mults=scale_mults,
                         timeline_window=self.timeline_window,
                         trace=self.trace, backend=self.backend)

    def to_payload(self) -> dict:
        """JSON-compatible rendering (campaign manifests)."""
        from dataclasses import fields as dc_fields
        return {
            "scale": self.scale,
            "seed": self.seed,
            "config": {f.name: getattr(self.config, f.name)
                       for f in dc_fields(self.config)},
            "timeline_window": self.timeline_window,
            "trace": self.trace,
            "backend": self.backend,
        }

    @classmethod
    def from_payload(cls, data: dict) -> "DesignEnv":
        return cls(scale=data["scale"], seed=data["seed"],
                   config=GPUConfig(**data["config"]),
                   timeline_window=data.get("timeline_window"),
                   trace=bool(data.get("trace", False)),
                   backend=data.get("backend", "object"))
