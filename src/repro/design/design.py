"""Factorial experiment designs that compile to :class:`SimJob` sets.

The vocabulary (after the experimentator school of design description —
see SNIPPETS.md): an experiment is a *design*, a design is one or more
*blocks*, a block is an ordered list of *factors*, and the block's cells
are the factorial product of its factors' levels, filtered, reordered and
patched by declarative rules.  A :class:`Factor` comes in three kinds:

``crossed``
    An explicit level list; the block crosses it with every other factor.
``nested``
    Levels computed per cell from the factors declared *before* it (and
    the compile environment) — e.g. a static-CTA-limit sweep whose range
    is the benchmark's occupancy under the current scale and hardware.
``derived``
    Exactly one value per cell, computed from the cell — e.g. a policy
    descriptor assembled from separate ``rule`` and ``param`` factors.

Reserved factor names bind cells to simulation jobs (everything else is
free vocabulary for filters and derivations): ``bench`` (kernel name or
name list), ``warp``, ``policy``, ``scale_mults``, and ``config`` (a
:class:`~repro.sim.config.GPUConfig` or a dict of field overrides applied
to the environment's baseline).

:meth:`Design.compile` is deterministic by construction: the same design
and the same :class:`~repro.design.env.DesignEnv` produce the same cells
in the same order with the same job fingerprints, every time.  That is
the property campaigns (:mod:`repro.design.campaign`), the result cache
and the fuzzer's ``design`` invariant all lean on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..sim.config import GPUConfig
from ..harness.jobs import SimJob
from .env import DesignEnv


class DesignError(ValueError):
    """An invalid design declaration (bad factor, filter or override)."""


Cell = dict  # a cell is a plain {factor name: level value} mapping

#: Factor names the compiler binds to SimJob fields; all other names are
#: free design vocabulary.
RESERVED = ("bench", "warp", "policy", "scale_mults", "config")


def _freeze(value: Any) -> Any:
    """Normalize lists to tuples recursively (cells must be hashable-ish
    and descriptor-compatible: policies and warps are tuples)."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class Factor:
    """One independent variable of a design block."""

    name: str
    kind: str = "crossed"                 # crossed | nested | derived
    levels: tuple = ()                    # crossed only
    fn: Callable[[Cell, DesignEnv], Any] | None = None   # nested/derived

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise DesignError(f"factor needs a non-empty name, "
                              f"got {self.name!r}")
        if self.kind not in ("crossed", "nested", "derived"):
            raise DesignError(f"unknown factor kind {self.kind!r}")
        if self.kind == "crossed":
            levels = tuple(_freeze(level) for level in self.levels)
            if not levels:
                raise DesignError(f"crossed factor {self.name!r} needs at "
                                  f"least one level")
            object.__setattr__(self, "levels", levels)
        elif self.fn is None:
            raise DesignError(f"{self.kind} factor {self.name!r} needs a "
                              f"callable")

    # ------------------------------------------------------------------ #
    @classmethod
    def crossed(cls, name: str, levels: Iterable) -> "Factor":
        return cls(name=name, kind="crossed", levels=tuple(levels))

    @classmethod
    def nested(cls, name: str,
               fn: Callable[[Cell, DesignEnv], Iterable]) -> "Factor":
        """Levels computed per cell (sees earlier factors + the env)."""
        return cls(name=name, kind="nested", fn=fn)

    @classmethod
    def derived(cls, name: str,
                fn: Callable[[Cell, DesignEnv], Any]) -> "Factor":
        """Exactly one value per cell, computed from the cell."""
        return cls(name=name, kind="derived", fn=fn)

    # ------------------------------------------------------------------ #
    def expand(self, cell: Cell, env: DesignEnv) -> list:
        if self.kind == "crossed":
            return list(self.levels)
        if self.kind == "nested":
            return [_freeze(level) for level in self.fn(cell, env)]
        return [_freeze(self.fn(cell, env))]

    @property
    def file_representable(self) -> bool:
        return self.kind == "crossed"


def _matches(cell: Cell, match: Mapping) -> bool:
    """True when every (name, value) pair of ``match`` equals the cell's."""
    return all(name in cell and cell[name] == _freeze(value)
               for name, value in match.items())


@dataclass(frozen=True)
class Override:
    """A declarative per-cell patch: cells matching ``match`` get the
    factor values in ``set`` replaced/added after generation."""

    match: Mapping
    set: Mapping

    def __post_init__(self) -> None:
        if not self.set:
            raise DesignError("an override needs a non-empty 'set' mapping")
        object.__setattr__(self, "match", dict(self.match))
        object.__setattr__(self, "set",
                           {k: _freeze(v) for k, v in dict(self.set).items()})

    def apply(self, cell: Cell) -> Cell:
        if _matches(cell, self.match):
            patched = dict(cell)
            patched.update(self.set)
            return patched
        return cell


@dataclass(frozen=True)
class Block:
    """One factorial product: factors x filters x overrides."""

    factors: tuple[Factor, ...]
    # Declarative exclusion rules (file-representable) plus arbitrary
    # predicates (in-code designs); a cell survives when no exclusion
    # matches and every predicate returns True.
    exclude: tuple[Override | Mapping, ...] = ()
    where: tuple[Callable[[Cell], bool], ...] = ()
    overrides: tuple[Override, ...] = ()

    def __post_init__(self) -> None:
        factors = tuple(self.factors)
        if not factors:
            raise DesignError("a block needs at least one factor")
        names = [f.name for f in factors]
        if len(set(names)) != len(names):
            raise DesignError(f"duplicate factor names in block: {names}")
        object.__setattr__(self, "factors", factors)
        object.__setattr__(self, "exclude",
                           tuple(dict(m) for m in self.exclude))
        object.__setattr__(self, "where", tuple(self.where))
        object.__setattr__(self, "overrides", tuple(self.overrides))

    def cells(self, env: DesignEnv) -> list[Cell]:
        cells: list[Cell] = [{}]
        for factor in self.factors:
            expanded: list[Cell] = []
            for cell in cells:
                for level in factor.expand(cell, env):
                    new = dict(cell)
                    new[factor.name] = level
                    expanded.append(new)
            cells = expanded
        cells = [cell for cell in cells
                 if not any(_matches(cell, m) for m in self.exclude)
                 and all(pred(cell) for pred in self.where)]
        for override in self.overrides:
            cells = [override.apply(cell) for cell in cells]
        return cells

    @property
    def file_representable(self) -> bool:
        return (all(f.file_representable for f in self.factors)
                and not self.where)


@dataclass(frozen=True)
class CompiledCell:
    """One design cell lowered to an executable job."""

    index: int
    cell: Cell
    job: SimJob

    @property
    def label(self) -> str:
        """A stable, filesystem-safe slug of the cell's factor values."""
        parts = []
        for name, value in self.cell.items():
            if isinstance(value, tuple):
                rendered = "+".join(str(v) for v in value if v is not None)
            else:
                rendered = str(value)
            parts.append(f"{name}={rendered}")
        slug = ",".join(parts)
        return slug.replace("/", "-").replace(" ", "")


@dataclass(frozen=True)
class Design:
    """A named, orderable collection of factorial blocks.

    ``order`` is ``"declared"`` (the factorial product order, the default)
    or ``"sorted"`` (cells sorted by their rendered labels — a stable
    cross-block interleaving useful when cells should group by benchmark
    rather than by block).  Both are deterministic.
    """

    name: str
    blocks: tuple[Block, ...] = ()
    order: str = "declared"

    def __init__(self, name: str,
                 factors: Sequence[Factor] | None = None, *,
                 blocks: Sequence[Block] | None = None,
                 exclude: Sequence[Mapping] = (),
                 where: Sequence[Callable[[Cell], bool]] = (),
                 overrides: Sequence[Override] = (),
                 order: str = "declared") -> None:
        if not name:
            raise DesignError("a design needs a name")
        if order not in ("declared", "sorted"):
            raise DesignError(f"unknown ordering {order!r}; "
                              f"use 'declared' or 'sorted'")
        if (factors is None) == (blocks is None):
            raise DesignError("pass exactly one of factors= or blocks=")
        if factors is not None:
            blocks = (Block(factors=tuple(factors), exclude=tuple(exclude),
                            where=tuple(where),
                            overrides=tuple(overrides)),)
        elif exclude or where or overrides:
            raise DesignError("exclude/where/overrides belong to blocks "
                              "when blocks= is used")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "blocks", tuple(blocks))
        object.__setattr__(self, "order", order)
        if not self.blocks:
            raise DesignError("a design needs at least one block")

    # ------------------------------------------------------------------ #
    @classmethod
    def chain(cls, name: str, *designs: "Design",
              order: str = "declared") -> "Design":
        """Concatenate several designs' blocks under one name (drivers
        compose e.g. a baseline block with a static-sweep block)."""
        blocks: list[Block] = []
        for design in designs:
            blocks.extend(design.blocks)
        return cls(name, blocks=tuple(blocks), order=order)

    # ------------------------------------------------------------------ #
    def cells(self, env: DesignEnv | None = None) -> list[Cell]:
        env = env if env is not None else DesignEnv()
        cells = [cell for block in self.blocks for cell in block.cells(env)]
        seen: set[str] = set()
        unique: list[Cell] = []
        for cell in cells:
            key = _cell_key(cell)
            if key in seen:
                continue
            seen.add(key)
            unique.append(cell)
        return unique

    def compile(self, env: DesignEnv | None = None) -> list[CompiledCell]:
        """Lower every cell to a :class:`SimJob`, deterministically.

        Duplicate cells across blocks collapse to their first occurrence
        (a chained design never declares the same simulation twice), and
        the result order is stable: same design + same env -> same cells,
        same jobs, same fingerprints.
        """
        env = env if env is not None else DesignEnv()
        compiled = []
        for index, cell in enumerate(self._ordered(self.cells(env))):
            compiled.append(CompiledCell(index=index, cell=cell,
                                         job=_cell_job(cell, env)))
        return compiled

    def _ordered(self, cells: list[Cell]) -> list[Cell]:
        if self.order == "sorted":
            return sorted(cells, key=_cell_key)
        return cells

    # ------------------------------------------------------------------ #
    @property
    def file_representable(self) -> bool:
        return all(block.file_representable for block in self.blocks)

    def digest(self, env: DesignEnv | None = None) -> str:
        """sha256 over the compiled cells' labels + job fingerprints.

        Identity by *meaning*, not by declaration: two different
        declarations compiling to the same jobs share a digest (and a
        campaign manifest), while any change to a factor level, filter,
        override, ordering or environment produces a new digest.
        """
        compiled = self.compile(env)
        payload = [[cc.label, cc.job.fingerprint()] for cc in compiled]
        canonical = json.dumps([self.name, payload], sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _cell_key(cell: Cell) -> str:
    """A canonical, order-insensitive rendering of one cell (dedup/sort)."""
    def default(value):
        if isinstance(value, GPUConfig):
            from dataclasses import fields as dc_fields
            return {f.name: getattr(value, f.name) for f in dc_fields(value)}
        return repr(value)
    return json.dumps(cell, sort_keys=True, separators=(",", ":"),
                      default=default)


def _cell_job(cell: Cell, env: DesignEnv) -> SimJob:
    """Bind one cell's reserved factors to a job."""
    if "bench" not in cell:
        raise DesignError(f"cell {cell!r} has no 'bench' factor; the "
                          f"compiler cannot bind it to a simulation")
    names = cell["bench"]
    config = cell.get("config")
    if isinstance(config, Mapping):
        config = env.config.with_overrides(**config)
    mults = cell.get("scale_mults")
    return env.job(names, warp=cell.get("warp", "gto"),
                   policy=tuple(cell.get("policy", ("rr",))),
                   scale_mults=mults, config=config)
