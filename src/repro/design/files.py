"""Design files: experiments as data on disk (TOML or JSON).

A design file declares what :class:`~repro.design.design.Design` declares
in code — factors with explicit level lists, exclusion rules, per-cell
overrides and an ordering — plus an optional ``[design.env]`` section
pinning scale/seed so a campaign file is self-contained::

    [design]
    name = "lcs-vs-dyncta"
    order = "declared"

    [[design.factor]]
    name = "bench"
    levels = ["kmeans", "iindex", "streaming"]

    [[design.factor]]
    name = "policy"
    levels = [["rr"], ["lcs", "tail", 0.5], ["dyncta"]]

    [[design.exclude]]
    bench = "streaming"
    policy = ["dyncta"]

    [[design.override]]
    match = { bench = "kmeans" }
    set = { warp = "baws" }

    [design.env]
    scale = 0.25

Multi-block designs use ``[[design.block]]`` sections, each carrying its
own ``factor``/``exclude``/``override`` arrays.  TOML has no null, so the
string ``"none"`` denotes ``None`` inside level values (e.g. the open
block-limit slot of ``["bcs", 2, "none"]``); JSON files use native
``null``.  Only *file-representable* designs serialize — nested/derived
factors and predicate filters are in-code constructs (the E-driver
registry); everything the parser accepts round-trips through
:func:`serialize_design` with identical compiled fingerprints, which is
exactly what the design round-trip tests and the fuzzer's ``design``
invariant assert.
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path
from typing import Any, Mapping

from .design import Block, Design, DesignError, Factor, Override

#: [design.env] keys a file may pin (merged over the CLI environment).
ENV_KEYS = ("scale", "seed", "backend", "timeline_window", "trace")

#: The string that encodes None in TOML files (TOML has no null).
NONE_SENTINEL = "none"


def _decode(value: Any) -> Any:
    """File value -> design value ("none" -> None, recursively)."""
    if isinstance(value, str) and value == NONE_SENTINEL:
        return None
    if isinstance(value, list):
        return [_decode(v) for v in value]
    if isinstance(value, dict):
        return {k: _decode(v) for k, v in value.items()}
    return value


def _encode(value: Any) -> Any:
    """Design value -> file value (None -> "none", tuples -> lists)."""
    if value is None:
        return NONE_SENTINEL
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode(v) for k, v in value.items()}
    return value


# --------------------------------------------------------------------------- #
# parsing
# --------------------------------------------------------------------------- #

def _parse_block(data: Mapping, where: str) -> Block:
    factors = []
    for spec in data.get("factor", ()):
        if not isinstance(spec, Mapping) or "name" not in spec:
            raise DesignError(f"{where}: every [[factor]] needs a name, "
                              f"got {spec!r}")
        if "levels" not in spec:
            raise DesignError(f"{where}: factor {spec['name']!r} needs "
                              f"explicit levels (nested/derived factors "
                              f"are in-code constructs)")
        factors.append(Factor.crossed(spec["name"],
                                      _decode(list(spec["levels"]))))
    if not factors:
        raise DesignError(f"{where}: a design block needs at least one "
                          f"[[factor]]")
    exclude = tuple(_decode(dict(m)) for m in data.get("exclude", ()))
    overrides = []
    for spec in data.get("override", ()):
        if not isinstance(spec, Mapping) or "set" not in spec:
            raise DesignError(f"{where}: every [[override]] needs a "
                              f"'set' table, got {spec!r}")
        overrides.append(Override(match=_decode(dict(spec.get("match", {}))),
                                  set=_decode(dict(spec["set"]))))
    return Block(factors=tuple(factors), exclude=exclude,
                 overrides=tuple(overrides))


def parse_design(text: str, *, fmt: str | None = None
                 ) -> tuple[Design, dict]:
    """Parse a design document; returns ``(design, env_overrides)``.

    ``fmt`` is ``"toml"`` or ``"json"``; omitted, the document is sniffed
    (JSON documents start with ``{``).  ``env_overrides`` holds only the
    ``[design.env]`` keys the file actually pinned.
    """
    if fmt is None:
        fmt = "json" if text.lstrip().startswith("{") else "toml"
    try:
        if fmt == "json":
            document = json.loads(text)
        elif fmt == "toml":
            document = tomllib.loads(text)
        else:
            raise DesignError(f"unknown design file format {fmt!r}")
    except (json.JSONDecodeError, tomllib.TOMLDecodeError) as error:
        raise DesignError(f"unparseable {fmt} design file: {error}") from None
    data = document.get("design")
    if not isinstance(data, Mapping):
        raise DesignError("a design file needs a [design] table "
                          "(or a top-level 'design' object in JSON)")
    name = data.get("name")
    if not name or not isinstance(name, str):
        raise DesignError("[design] needs a non-empty string 'name'")
    order = data.get("order", "declared")
    block_specs = data.get("block")
    if block_specs:
        if any(key in data for key in ("factor", "exclude", "override")):
            raise DesignError("use either top-level [[design.factor]] "
                              "tables or [[design.block]] sections, "
                              "not both")
        blocks = tuple(_parse_block(spec, f"block #{i}")
                       for i, spec in enumerate(block_specs))
        design = Design(name, blocks=blocks, order=order)
    else:
        block = _parse_block(data, f"design {name!r}")
        design = Design(name, blocks=(block,), order=order)
    env = data.get("env", {})
    if not isinstance(env, Mapping):
        raise DesignError("[design.env] must be a table")
    unknown = sorted(set(env) - set(ENV_KEYS))
    if unknown:
        raise DesignError(f"unknown [design.env] keys {unknown}; "
                          f"known: {list(ENV_KEYS)}")
    return design, _decode(dict(env))


def load_design(path: str | Path) -> tuple[Design, dict]:
    """Parse a design file; the suffix picks the format (.json vs .toml)."""
    path = Path(path)
    fmt = "json" if path.suffix.lower() == ".json" else "toml"
    return parse_design(path.read_text(), fmt=fmt)


# --------------------------------------------------------------------------- #
# serialization
# --------------------------------------------------------------------------- #

def _toml_value(value: Any) -> str:
    value = _encode(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)   # JSON strings are valid TOML strings
    if isinstance(value, list):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    if isinstance(value, dict):
        pairs = ", ".join(f"{k} = {_toml_value(v)}"
                          for k, v in value.items())
        return "{ " + pairs + " }"
    raise DesignError(f"cannot render {value!r} in a design file")


def _block_payload(block: Block) -> dict:
    payload: dict[str, Any] = {
        "factor": [{"name": f.name, "levels": _encode(list(f.levels))}
                   for f in block.factors]}
    if block.exclude:
        payload["exclude"] = [_encode(dict(m)) for m in block.exclude]
    if block.overrides:
        payload["override"] = [{"match": _encode(dict(o.match)),
                                "set": _encode(dict(o.set))}
                               for o in block.overrides]
    return payload


def design_payload(design: Design, *, env: Mapping | None = None) -> dict:
    """The JSON-compatible document rendering (shared by both formats)."""
    if not design.file_representable:
        raise DesignError(
            f"design {design.name!r} uses nested/derived factors or "
            f"predicate filters and cannot be written to a file")
    data: dict[str, Any] = {"name": design.name}
    if design.order != "declared":
        data["order"] = design.order
    if len(design.blocks) == 1:
        data.update(_block_payload(design.blocks[0]))
    else:
        data["block"] = [_block_payload(b) for b in design.blocks]
    if env:
        unknown = sorted(set(env) - set(ENV_KEYS))
        if unknown:
            raise DesignError(f"unknown env keys {unknown}")
        data["env"] = _encode(dict(env))
    return {"design": data}


def serialize_design(design: Design, *, fmt: str = "toml",
                     env: Mapping | None = None) -> str:
    """Render a file-representable design back to TOML or JSON text."""
    document = design_payload(design, env=env)
    if fmt == "json":
        return json.dumps(document, indent=2) + "\n"
    if fmt != "toml":
        raise DesignError(f"unknown design file format {fmt!r}")
    data = document["design"]
    lines = ["[design]", f"name = {_toml_value(data['name'])}"]
    if "order" in data:
        lines.append(f"order = {_toml_value(data['order'])}")

    def emit_block(payload: Mapping, prefix: str) -> None:
        for factor in payload.get("factor", ()):
            lines.extend(["", f"[[{prefix}factor]]",
                          f"name = {_toml_value(factor['name'])}",
                          f"levels = {_toml_value(factor['levels'])}"])
        for match in payload.get("exclude", ()):
            lines.extend(["", f"[[{prefix}exclude]]"])
            lines.extend(f"{key} = {_toml_value(value)}"
                         for key, value in match.items())
        for override in payload.get("override", ()):
            lines.extend(["", f"[[{prefix}override]]",
                          f"match = {_toml_value(override['match'])}",
                          f"set = {_toml_value(override['set'])}"])

    if "block" in data:
        for payload in data["block"]:
            lines.extend(["", "[[design.block]]"])
            # Block-local arrays are emitted inline (sub-tables of an
            # array-of-tables element would need dotted headers).
            lines.append("factor = [")
            for factor in payload.get("factor", ()):
                lines.append(f"  {{ name = {_toml_value(factor['name'])}, "
                             f"levels = {_toml_value(factor['levels'])} }},")
            lines.append("]")
            if payload.get("exclude"):
                lines.append(
                    "exclude = ["
                    + ", ".join(_toml_value(m) for m in payload["exclude"])
                    + "]")
            if payload.get("override"):
                lines.append(
                    "override = ["
                    + ", ".join(_toml_value(o) for o in payload["override"])
                    + "]")
    else:
        emit_block(data, "design.")
    if "env" in data:
        lines.extend(["", "[design.env]"])
        lines.extend(f"{key} = {_toml_value(value)}"
                     for key, value in data["env"].items())
    return "\n".join(lines) + "\n"
