"""Lease-based cell claiming: fold journal records into campaign state.

The journal (:mod:`repro.design.journal`) is the history; this module is
the state machine that reads it.  :func:`fold_records` replays records
in file order into one :class:`CellState` per cell; the campaign then
asks :func:`claimable` which cells a worker may take and
:func:`claim_winner` who owns a contested one.

The lease protocol, in full:

* **Claim.**  A worker appends ``claim {cell, fingerprint, worker,
  nonce, ttl}``, then re-reads the journal.  Appends interleave whole
  records (``O_APPEND``), so file order is a total order: the *first*
  live claim on a cell wins, and a worker that finds someone else's
  claim ahead of its own appends a ``release`` and moves on.  No locks,
  no coordinator — N ``repro-exp --design F --shard`` processes sharing
  a filesystem drain one campaign safely.
* **Heartbeat.**  Every record a worker appends refreshes its liveness;
  a dedicated ``heartbeat`` record (appended every ``ttl/3`` by a
  background thread) covers long-running batches.  A claim is **live**
  while ``last-record-time(worker) + ttl > now``.
* **Expiry + reclaim.**  A claim whose worker has gone silent past its
  TTL is dead: the cell is claimable again.  If the presumed-dead worker
  was merely slow and both finish, the cell has two ``done`` records —
  resolved deterministically: records carrying the wrong fingerprint are
  ignored outright, and among matching ones the first in file order
  wins.  Both workers ran the *same* fingerprinted job, so the results
  are bitwise-identical anyway (the chaos harness asserts exactly this);
  the duplicate is counted, never an error.
* **Retry budget.**  Each ``failed`` record costs the cell one attempt.
  With ``max_retries`` set, a cell that fails ``max_retries + 1`` times
  is journaled ``exhausted``: terminal, reported distinctly, never
  claimed again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Cell lifecycle states (``claimed`` is presentational: a pending or
#: failed cell with a live lease).
PENDING = "pending"
CLAIMED = "claimed"
DONE = "done"
FAILED = "failed"
EXHAUSTED = "exhausted"

#: Default lease time-to-live in seconds (heartbeats run at ttl/3).
DEFAULT_LEASE_TTL = 30.0


@dataclass
class CellState:
    """One cell's folded execution state."""

    index: int
    status: str = PENDING
    attempts: int = 0
    cycles: int | None = None
    ipc: float | None = None
    error: str | None = None
    #: Live claim records in file order: {worker, nonce, t, ttl}.
    claims: list[dict] = field(default_factory=list)
    #: Extra ``done`` records observed after the first (dup completions).
    duplicate_done: int = 0

    @property
    def terminal(self) -> bool:
        return self.status in (DONE, EXHAUSTED)

    def display_status(self, beats: dict[str, float], now: float) -> str:
        """Status with live leases shown as ``claimed``."""
        if self.terminal or self.status == FAILED:
            return self.status
        return CLAIMED if any(_alive(c, beats, now)
                              for c in self.claims) else PENDING


@dataclass
class CampaignState:
    """Every cell's state plus worker liveness, as folded from records."""

    cells: dict[int, CellState]
    #: Worker id -> timestamp of its newest record (liveness).
    beats: dict[str, float] = field(default_factory=dict)
    duplicate_done: int = 0
    #: Records that named an unknown cell or the wrong fingerprint.
    ignored_records: int = 0

    def counts(self, now: float | None = None) -> dict[str, int]:
        now = time.time() if now is None else now
        out = {PENDING: 0, CLAIMED: 0, DONE: 0, FAILED: 0, EXHAUSTED: 0}
        for cell in self.cells.values():
            out[cell.display_status(self.beats, now)] += 1
        return out


def _alive(claim: dict, beats: dict[str, float], now: float) -> bool:
    worker = claim.get("worker")
    seen = max(beats.get(worker, 0.0), float(claim.get("t", 0.0)))
    return seen + float(claim.get("ttl", DEFAULT_LEASE_TTL)) > now


def lease_alive(claim: dict, beats: dict[str, float], now: float) -> bool:
    """Is this lease live — newest heartbeat (or claim time) within TTL?

    The one liveness rule shared by every lease in the system: campaign
    cell claims here, and the cluster's job-ownership leases
    (:mod:`repro.service.cluster`), which hold ``{"worker": node, "t":
    claim_time, "ttl": seconds}`` claims against node-level gossip
    heartbeats.
    """
    return _alive(claim, beats, now)


def fold_records(records: list[dict], *, fingerprints: dict[int, str],
                 base: dict[int, dict] | None = None) -> CampaignState:
    """Replay journal records (after an optional snapshot base).

    ``fingerprints`` is the meta file's cell-index -> job-fingerprint
    map: the universe of cells, and the authority a ``done``/``failed``
    record must agree with to count.  ``base`` is a snapshot's terminal
    states (compaction); journal records fold on top idempotently — a
    ``done`` for an already-done cell is a counted duplicate, so
    replaying records the snapshot already covers changes nothing.
    """
    cells = {index: CellState(index=index) for index in fingerprints}
    state = CampaignState(cells=cells)
    for index, snap in (base or {}).items():
        cell = cells.get(index)
        if cell is None:
            state.ignored_records += 1
            continue
        cell.status = snap.get("status", PENDING)
        cell.attempts = int(snap.get("attempts", 0) or 0)
        cell.cycles = snap.get("cycles")
        cell.ipc = snap.get("ipc")
        cell.error = snap.get("error")
    for record in records:
        worker = record.get("worker")
        if isinstance(worker, str):
            t = float(record.get("t", 0.0))
            if t > state.beats.get(worker, 0.0):
                state.beats[worker] = t
        kind = record.get("type")
        if kind == "heartbeat":
            continue
        index = record.get("cell")
        cell = cells.get(index)
        if cell is None:
            if kind in ("claim", "release", "done", "failed", "exhausted"):
                state.ignored_records += 1
            continue
        if kind == "claim":
            if not cell.terminal:
                cell.claims.append({"worker": worker,
                                    "nonce": record.get("nonce"),
                                    "t": record.get("t", 0.0),
                                    "ttl": record.get("ttl",
                                                      DEFAULT_LEASE_TTL)})
        elif kind == "release":
            nonce = record.get("nonce")
            cell.claims = [c for c in cell.claims
                           if not (c["worker"] == worker
                                   and (nonce is None
                                        or c["nonce"] == nonce))]
        elif kind == "done":
            if record.get("fingerprint") != fingerprints[index]:
                state.ignored_records += 1
                continue
            if cell.status == DONE:
                cell.duplicate_done += 1
                state.duplicate_done += 1
                continue
            cell.status = DONE
            cell.cycles = record.get("cycles")
            cell.ipc = record.get("ipc")
            cell.error = None
            cell.claims.clear()
        elif kind == "failed":
            if record.get("fingerprint") not in (None, fingerprints[index]):
                state.ignored_records += 1
                continue
            if cell.terminal:
                continue
            cell.status = FAILED
            cell.attempts += 1
            cell.error = record.get("error")
            cell.claims = [c for c in cell.claims if c["worker"] != worker]
        elif kind == "exhausted":
            if not cell.terminal:
                cell.status = EXHAUSTED
                cell.claims.clear()
    return state


def claim_winner(cell: CellState, beats: dict[str, float],
                 now: float) -> dict | None:
    """The live claim that owns this cell: first in file order, or None."""
    for claim in cell.claims:
        if _alive(claim, beats, now):
            return claim
    return None


def claimable(state: CampaignState, *, now: float, worker: str,
              max_retries: int | None = None,
              exclude: set[int] | None = None) -> list[int]:
    """Cell indices ``worker`` may claim right now, in index order.

    A cell is claimable when it still owes a result (not done, not
    exhausted, retry budget left) and no *other* worker holds a live
    lease on it — an expired lease does not block (that is the reclaim
    path).  ``exclude`` drops cells this invocation already failed:
    like the pre-journal campaign, failed cells retry on the next
    resume, not in a loop within one run.
    """
    out = []
    for index in sorted(state.cells):
        cell = state.cells[index]
        if cell.terminal or (exclude and index in exclude):
            continue
        if max_retries is not None and cell.attempts > max_retries:
            continue
        winner = claim_winner(cell, state.beats, now)
        if winner is not None and winner["worker"] != worker:
            continue
        out.append(index)
    return out


def newly_exhausted(state: CampaignState,
                    max_retries: int | None) -> list[int]:
    """Failed cells whose retry budget just ran out (need a record)."""
    if max_retries is None:
        return []
    return [index for index, cell in sorted(state.cells.items())
            if cell.status == FAILED and cell.attempts > max_retries]
