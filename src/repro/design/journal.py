"""Append-only, checksummed JSONL write-ahead journal for campaigns.

The durable half of a campaign directory.  The *meta* file
(``meta.json``) records what the campaign **is** — design digest,
environment, one static entry per cell — and is written exactly once;
everything that **happens** (a worker claiming a cell, heartbeating its
leases, finishing or failing a cell, a cell exhausting its retry budget)
is appended here as one self-checksummed JSON line.  Nothing is ever
rewritten in place, so a crash at any byte can at worst tear the final
record — and replay is torn-tail tolerant by construction.

Record format (one per line)::

    {"type": "done", "cell": 3, "fingerprint": "ab..", "worker": "h-42",
     "t": 1754650000.1, ..., "crc": "9f2c4e..."}

``crc`` is the first 16 hex chars of sha256 over the canonical JSON of
the record *without* the crc key.  :func:`replay_journal` drops any line
that does not parse or whose checksum disagrees (counting it), and drops
a trailing partial line (a torn write) silently — truncating the journal
at *any* byte boundary therefore recovers a valid prefix of the history,
and corrupting any single record costs exactly that record (property
tested in ``tests/test_journal.py``).

Appends are a single ``write()`` on an ``O_APPEND`` descriptor opened
per call, so concurrent workers sharing one journal file (one host or
several sharing a filesystem) interleave whole records, never bytes —
file order is the total order lease arbitration relies on
(:mod:`repro.design.leases`).  An append that fails with ``OSError``
(disk full, read-only store, or an injected ``fail-append`` fault)
degrades gracefully: warn once, count it, keep the record in memory so
the campaign can fall back to a snapshot on exit instead of aborting.

The *snapshot* (``snapshot.json``) is the compaction target: terminal
per-cell states folded up to some journal prefix, written atomically.
Replay is always ``fold(snapshot) + fold(journal)``; compaction writes
the snapshot and truncates the journal in that order, so a crash between
the two steps merely replays records the snapshot already covers — the
fold is idempotent for terminal records.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..harness.faults import FaultPlan

#: File names inside a campaign directory.
JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"

#: On-disk snapshot format version.
SNAPSHOT_FORMAT = 1

#: Hex chars of sha256 kept as the per-record checksum.
_CRC_HEX = 16


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_crc(record: dict) -> str:
    """Checksum over the record without its ``crc`` key."""
    body = {key: value for key, value in record.items() if key != "crc"}
    return hashlib.sha256(_canonical(body).encode("utf-8")) \
        .hexdigest()[:_CRC_HEX]


def decode_record(line: bytes) -> dict | None:
    """One journal line back to a record, or None if unparseable/corrupt."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or not isinstance(record.get("type"),
                                                      str):
        return None
    if record.get("crc") != record_crc(record):
        return None
    return record


@dataclass
class JournalReplay:
    """What :func:`replay_journal` recovered from one journal file."""

    records: list[dict] = field(default_factory=list)
    #: Complete lines that failed to parse or checksum (scribbled bytes).
    corrupt_records: int = 0
    #: The file ended mid-record (torn write from a killed worker).
    torn_tail: bool = False


def replay_journal(path: str | Path) -> JournalReplay:
    """Read every valid record, in file order, tolerating damage.

    A missing or unreadable file is an empty history.  A trailing
    partial line (no final newline) is a torn tail: dropped, flagged,
    never an error.  Any complete line that fails to decode is counted
    in ``corrupt_records`` and skipped.
    """
    try:
        data = Path(path).read_bytes()
    except OSError:
        return JournalReplay()
    body, newline, tail = data.rpartition(b"\n")
    replay = JournalReplay(torn_tail=bool(tail.strip()))
    if not newline:
        return replay
    for line in body.split(b"\n"):
        line = line.strip()
        if not line:
            continue
        record = decode_record(line)
        if record is None:
            replay.corrupt_records += 1
        else:
            replay.records.append(record)
    return replay


class Journal:
    """One worker's append handle on a campaign journal.

    ``worker`` stamps every record (lease arbitration and heartbeats key
    on it); ``faults`` optionally wires the campaign-grade injected
    failures (``fail-append``, ``torn-tail``, ``corrupt-journal``,
    ``kill-worker`` — see :mod:`repro.harness.faults`), addressed by this
    process's append ordinal.  Thread-safe: the campaign's heartbeat
    thread and its outcome callback append concurrently.
    """

    def __init__(self, path: str | Path, *, worker: str = "-",
                 faults: "FaultPlan | None" = None) -> None:
        self.path = Path(path)
        self.worker = worker
        self.faults = faults
        self.appends = 0
        self.append_errors = 0
        #: Records that failed to persist (kept so the campaign can fold
        #: them into its in-memory state and snapshot them on exit).
        self.unpersisted: list[dict] = []
        self._warned = False
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return (f"Journal({str(self.path)!r}, worker={self.worker!r}, "
                f"appends={self.appends}, errors={self.append_errors})")

    # ------------------------------------------------------------------ #
    def append(self, type: str, **payload: Any) -> tuple[dict, bool]:
        """Append one record; return ``(record, persisted)``.

        A storage failure never raises: the first one warns, every one
        counts, and the record is remembered in :attr:`unpersisted` so
        the caller can degrade to snapshot-on-exit durability.
        """
        record = {"type": type, "worker": self.worker, "t": time.time(),
                  **payload}
        record["crc"] = record_crc(record)
        line = (_canonical(record) + "\n").encode("utf-8")
        with self._lock:
            ordinal = self.appends
            try:
                if self.faults is not None \
                        and self.faults.journal_fail_append(ordinal):
                    raise OSError("injected journal append failure")
                fd = os.open(self.path,
                             os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
                try:
                    os.write(fd, line)
                finally:
                    os.close(fd)
            except OSError as error:
                self.append_errors += 1
                self.unpersisted.append(record)
                if not self._warned:
                    self._warned = True
                    warnings.warn(
                        f"campaign journal {self.path} is not appendable "
                        f"({type_name(error)}: {error}); continuing with "
                        f"in-memory state and snapshot-on-exit durability",
                        RuntimeWarning, stacklevel=2)
                return record, False
            self.appends += 1
        if self.faults is not None:
            self._post_append_faults(ordinal, len(line))
        return record, True

    def heartbeat(self) -> None:
        """Refresh this worker's leases (liveness rides every record)."""
        self.append("heartbeat")

    # ------------------------------------------------------------------ #
    def _post_append_faults(self, ordinal: int, line_len: int) -> None:
        """Fire campaign-grade faults addressed at append ``ordinal``.

        ``torn-tail`` chops the just-written record in half (a torn
        write), ``corrupt-journal`` scribbles a byte inside it, and
        ``kill-worker`` takes the whole campaign process down — each at
        most once per campaign (shared marker files), so a restarted
        worker does not die again at the same point.
        """
        from ..harness.faults import KILL_EXIT_CODE
        for action in self.faults.journal_post_append(ordinal):
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = line_len
            if action == "torn-tail":
                try:
                    os.truncate(self.path, max(size - line_len // 2, 0))
                except OSError:
                    pass
            elif action == "corrupt-journal":
                try:
                    with open(self.path, "r+b") as handle:
                        handle.seek(max(size - line_len + 2, 0))
                        handle.write(b"\xff")
                except OSError:
                    pass
            elif action == "kill-worker":
                os._exit(KILL_EXIT_CODE)


def type_name(error: BaseException) -> str:
    return type(error).__name__


# --------------------------------------------------------------------------- #
# snapshots (the compaction target)
# --------------------------------------------------------------------------- #

def write_snapshot(directory: str | Path, digest: str,
                   cells: dict[int, dict]) -> bool:
    """Atomically persist folded terminal cell states; True on success.

    ``cells`` maps cell index to a plain state dict (status, attempts,
    cycles, ipc, error).  Like every store in this repo, an unwritable
    snapshot degrades (returns False) rather than raising.
    """
    directory = Path(directory)
    payload = {
        "format": SNAPSHOT_FORMAT,
        "digest": digest,
        "written": time.time(),
        "cells": {str(index): state for index, state in cells.items()},
    }
    tmp_name = None
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=directory, prefix=".tmp-snap-")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_name, directory / SNAPSHOT_NAME)
    except OSError:
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        return False
    return True


def load_snapshot(directory: str | Path, digest: str) -> dict[int, dict]:
    """The snapshot's cell states, or empty when absent/corrupt/foreign.

    A snapshot that does not decode — or that records a different design
    digest — is quarantined to ``snapshot.json.corrupt`` (mirroring the
    result cache) and ignored: compaction already replayed its records
    from the journal once, so losing a snapshot costs re-simulated
    cells, never a wrong state.
    """
    path = Path(directory) / SNAPSHOT_NAME
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return {}
    try:
        payload = json.loads(raw)
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise ValueError("unknown snapshot format")
        if payload.get("digest") != digest:
            raise ValueError("snapshot from a different campaign")
        cells = {int(index): dict(state)
                 for index, state in payload["cells"].items()}
    except (ValueError, KeyError, TypeError, AttributeError):
        try:
            path.rename(path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        return {}
    return cells
