"""repro — reproduction of "Improving GPGPU resource utilization through
alternative thread block scheduling" (Lee et al., HPCA 2014).

Public API tour::

    from repro import simulate, make_kernel, GPUConfig
    from repro import LCSScheduler, BCSScheduler, MixedCKE

    kernel = make_kernel("kmeans")
    baseline = simulate(kernel, warp_scheduler="gto")
    lcs = simulate(make_kernel("kmeans"),
                   cta_scheduler=LCSScheduler(make_kernel("kmeans")))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .design import (Campaign, Design, DesignEnv, Factor, load_design,
                     parse_design, serialize_design)
from .core import (BCSScheduler, CTAScheduler, DynCTAScheduler,
                   LCSBCSScheduler, LCSDecision,
                   LCSScheduler, MixedCKE, OracleResult,
                   RoundRobinCTAScheduler, SequentialCKE, SMKEvenCKE,
                   SpatialCKE, StaticLimitCTAScheduler,
                   available_warp_schedulers, decide_n_star,
                   sweep_static_limits)
from .harness import (CheckpointPlan, CheckpointStore, CKEMetrics,
                      cke_metrics, compare_runs, simulate, validate_run)
from .sim import (GPU, GPUConfig, Instruction, InvariantSanitizer,
                  InvariantViolation, Kernel, KernelResourceError,
                  Op, RunResult, SimulationDeadlock, SimulationError,
                  SimulationTimeout, Snapshot, TimelineSampler)
from .verify import (FuzzCase, GoldenStore, cross_check, golden_matrix,
                     run_fuzz, verify_goldens)
from .workloads import (SUITE, BenchmarkInfo, TraceBuilder,
                        load_kernel_trace, make_kernel, save_kernel_trace,
                        suite_names)

__version__ = "1.0.0"

__all__ = [
    "BCSScheduler", "CTAScheduler", "DynCTAScheduler", "LCSBCSScheduler",
    "LCSDecision",
    "LCSScheduler", "MixedCKE", "CKEMetrics", "cke_metrics", "compare_runs",
    "validate_run",
    "TimelineSampler", "load_kernel_trace", "save_kernel_trace",
    "OracleResult", "RoundRobinCTAScheduler", "SequentialCKE", "SMKEvenCKE",
    "SpatialCKE", "StaticLimitCTAScheduler", "available_warp_schedulers",
    "decide_n_star", "sweep_static_limits", "simulate", "GPU", "GPUConfig",
    "Instruction", "Kernel", "KernelResourceError", "Op", "RunResult",
    "SimulationDeadlock", "SimulationError", "SimulationTimeout", "SUITE",
    "BenchmarkInfo", "TraceBuilder", "make_kernel", "suite_names",
    "CheckpointPlan", "CheckpointStore", "InvariantSanitizer",
    "InvariantViolation", "Snapshot",
    "FuzzCase", "GoldenStore", "cross_check", "golden_matrix", "run_fuzz",
    "verify_goldens",
    "Campaign", "Design", "DesignEnv", "Factor", "load_design",
    "parse_design", "serialize_design",
    "__version__",
]
