"""Trace exporters: JSONL and Chrome ``trace_event`` format.

The structured trace (:class:`~repro.telemetry.hub.TraceEvent` records, or
their plain-dict form as stored in ``RunResult.meta["trace"]``) exports two
ways:

* **JSONL** — one JSON object per line, in emission order; trivially
  greppable and streamable.
* **Chrome trace** — a ``{"traceEvents": [...]}`` document loadable in
  chrome://tracing (or https://ui.perfetto.dev).  CTA dispatch/complete
  pairs become duration (``"X"``) slices laid out per SM row, everything
  else becomes instant (``"i"``) events, and an optional
  :class:`~repro.telemetry.timeline.TimelineResult` contributes counter
  (``"C"``) tracks (IPC, occupancy, miss rates) so the windowed series
  render as graphs above the slices.  Timestamps are simulator cycles,
  reported in the trace's microsecond field — absolute units are arbitrary,
  relative layout is what matters.

Schema (JSONL)::

    {"kind": "<layer>.<what>", "cycle": <int>, "payload": {...}}

Kinds currently emitted: ``run.start``, ``run.end``, ``kernel.start``,
``kernel.done``, ``cta.dispatch``, ``cta.complete``, ``lcs.monitor``,
``lcs.decision``, ``bcs.block``, ``cke.phase``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from .timeline import TimelineResult

#: Counter columns promoted to chrome counter tracks (in display order).
_COUNTER_COLUMNS = ("ipc", "resident_ctas", "l1_miss_rate", "l2_miss_rate",
                    "dram_bus_util")


def _as_dict(event: Any) -> dict[str, Any]:
    """Accept TraceEvent objects or their plain-dict form."""
    if isinstance(event, Mapping):
        return {"kind": event["kind"], "cycle": event["cycle"],
                "payload": dict(event.get("payload", {}))}
    return event.to_dict()


def to_jsonl(events: Iterable[Any]) -> str:
    """One JSON object per line, in emission order."""
    return "\n".join(json.dumps(_as_dict(event), sort_keys=True)
                     for event in events)


def chrome_trace(events: Iterable[Any], *,
                 timeline: TimelineResult | None = None,
                 pid: int = 0, label: str = "repro") -> dict[str, Any]:
    """Build a chrome://tracing document from one run's events.

    CTA lifetimes (dispatch→complete, keyed by kernel+CTA id) become
    duration slices with ``tid`` = SM id; unmatched dispatches (a run that
    errored out) fall back to zero-duration slices.
    """
    records: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": label},
    }]
    open_ctas: dict[tuple[str, int], dict[str, Any]] = {}
    for event in events:
        data = _as_dict(event)
        kind, cycle, payload = data["kind"], data["cycle"], data["payload"]
        if kind == "cta.dispatch":
            open_ctas[(payload["kernel"], payload["cta"])] = data
            continue
        if kind == "cta.complete":
            start = open_ctas.pop((payload["kernel"], payload["cta"]), None)
            begin = start["cycle"] if start is not None else cycle
            args = dict(start["payload"]) if start is not None else {}
            args.update(payload)
            records.append({
                "name": f"{payload['kernel']}/cta{payload['cta']}",
                "cat": "cta", "ph": "X", "ts": begin,
                "dur": max(cycle - begin, 0), "pid": pid,
                "tid": payload["sm"], "args": args,
            })
            continue
        records.append({
            "name": kind, "cat": kind.partition(".")[0], "ph": "i",
            "ts": cycle, "pid": pid, "tid": payload.get("sm", 0),
            "s": "g", "args": payload,
        })
    for key, data in open_ctas.items():   # never completed (error paths)
        payload = data["payload"]
        records.append({
            "name": f"{payload['kernel']}/cta{payload['cta']}",
            "cat": "cta", "ph": "X", "ts": data["cycle"], "dur": 0,
            "pid": pid, "tid": payload.get("sm", 0), "args": payload,
        })
    if timeline is not None:
        for column in _COUNTER_COLUMNS:
            if column not in timeline.columns:
                continue
            series = timeline.columns[column]
            for boundary, value in zip(timeline.cycles, series):
                records.append({
                    "name": column, "ph": "C",
                    "ts": boundary - timeline.window, "pid": pid,
                    "args": {column: value},
                })
    return {"traceEvents": records, "displayTimeUnit": "ms",
            "otherData": {"source": "repro.telemetry",
                          "time_unit": "cycles"}}


def merge_chrome_traces(
        named: Sequence[tuple[str, Iterable[Any], TimelineResult | None]],
        *, engine_events: Iterable[Mapping[str, Any]] | None = None,
        drift_records: Iterable[Mapping[str, Any]] | None = None,
) -> dict[str, Any]:
    """Merge several runs into one document, one ``pid`` lane per run.

    ``named`` is a sequence of ``(label, events, timeline_or_None)``.

    ``engine_events`` optionally adds the batch engine's resilience trace
    (``job.retry``, ``job.timeout``, ``job.failed``, ``pool.respawn``,
    ``cache.write_error`` — see ``BatchReport.events``) as one extra lane.
    Those records carry wall-clock seconds, not cycles, so the lane has
    its own time base; what matters is the ordering of recovery actions.

    ``drift_records`` optionally adds a verification lane (see
    :func:`drift_lane`): golden drift, refmodel divergences and fuzz
    violations rendered as instant events, refmodel ones at their first
    divergent cycle.
    """
    merged: list[dict[str, Any]] = []
    for pid, (label, events, timeline) in enumerate(named):
        doc = chrome_trace(events, timeline=timeline, pid=pid, label=label)
        merged.extend(doc["traceEvents"])
    next_pid = len(named)
    engine_records = list(engine_events or ())
    if engine_records:
        engine_pid = next_pid
        next_pid += 1
        merged.append({"name": "process_name", "ph": "M", "pid": engine_pid,
                       "tid": 0, "args": {"name": "engine (wall-clock)"}})
        for event in engine_records:
            merged.append({
                "name": event["kind"], "cat": "engine", "ph": "i",
                "ts": float(event.get("t", 0.0)) * 1e6,   # s -> us
                "pid": engine_pid, "tid": 0, "s": "g",
                "args": dict(event.get("payload", {})),
            })
    drift = list(drift_records or ())
    if drift:
        merged.extend(drift_lane(drift, pid=next_pid))
    return {"traceEvents": merged, "displayTimeUnit": "ms",
            "otherData": {"source": "repro.telemetry",
                          "time_unit": "cycles"}}


def drift_lane(records: Iterable[Mapping[str, Any]],
               *, pid: int = 0) -> list[dict[str, Any]]:
    """Render verification failures as one chrome-trace lane.

    ``records`` are the JSONL failure dicts produced by the
    ``repro.verify`` layers (``kind`` of ``golden``, ``refmodel`` or
    ``fuzz``; see ``repro.verify.artifacts``).  Refmodel divergences land
    at their first divergent cycle so they line up against the counter
    tracks and CTA slices of the same run; golden drift and fuzz
    violations have no single cycle and sit at the origin.  Use with
    :func:`merge_chrome_traces` to overlay the drift lane on a telemetry
    trace of the diverging run.
    """
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "verify (drift)"},
    }]
    for record in records:
        kind = record.get("kind", "unknown")
        if kind == "header":
            continue
        if kind == "golden":
            name = f"drift:{record.get('label', '?')}"
            ts, args = 0, {"lanes": record.get("lanes", []),
                           "status": record.get("status"),
                           "diffs": record.get("diffs", {})}
        elif kind == "refmodel":
            name = f"diverged:{record.get('label', '?')}"
            ts = int(record.get("window_cycle") or 0)
            args = {"first_window": record.get("first_window"),
                    "window_diffs": record.get("window_diffs", []),
                    "stat_diffs": record.get("stat_diffs", [])}
        elif kind == "fuzz":
            name = f"violation:{record.get('invariant', '?')}"
            ts, args = 0, {"seed": record.get("seed"),
                           "detail": record.get("detail"),
                           "shrunk": record.get("shrunk")}
        else:
            name, ts, args = f"verify:{kind}", 0, dict(record)
        events.append({"name": name, "cat": "verify", "ph": "i",
                       "ts": ts, "pid": pid, "tid": 0, "s": "p",
                       "args": args})
    return events


def write_trace(path: str | Path, events: Iterable[Any], *,
                timeline: TimelineResult | None = None) -> Path:
    """Write a trace file; format chosen by suffix.

    ``.jsonl`` → JSONL; anything else (``.json``, ``.trace``) → Chrome
    trace_event JSON.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        payload = to_jsonl(events) + "\n"
    else:
        payload = json.dumps(chrome_trace(events, timeline=timeline,
                                          label=path.stem))
    path.write_text(payload, encoding="utf-8")
    return path
