"""Windowed time-series container produced by the telemetry hub.

A :class:`TimelineResult` is the machine's behaviour over time, sampled at
fixed window boundaries: one row per window holding the machine-level
metric columns (per-window IPC, cache miss rates, MSHR occupancy, DRAM bus
utilization, warp stall-state mix, ...) plus the per-SM resident-CTA
vector.  It is pure data — no simulator imports — so it can ride inside
``RunResult.meta`` (see the meta encoding contract in
:mod:`repro.sim.stats`), cross process boundaries, and round-trip the
persistent result cache losslessly: ``from_dict(to_dict(t)) == t`` holds
field for field, which the cache and engine equality guarantees rely on.

All values are JSON-native (ints, floats, lists, dicts keyed by str);
tuples are deliberately avoided so a JSON round trip preserves equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class TimelineResult:
    """One run's windowed metric series.

    ``cycles[i]`` is the *end* boundary of window ``i`` (the window covers
    ``(cycles[i-1], cycles[i]]``; the first window starts at the run's
    start cycle).  The final window may be shorter than ``window`` — it is
    flushed at run completion.
    """

    window: int
    cycles: list[int] = field(default_factory=list)
    columns: dict[str, list[float]] = field(default_factory=dict)
    ctas_per_sm: list[list[int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cycles)

    def __bool__(self) -> bool:
        return bool(self.cycles)

    def series(self, name: str) -> list[float]:
        """One metric column, by name (see ``column_names``)."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"no timeline column {name!r}; available: "
                           f"{sorted(self.columns)}") from None

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def row(self, index: int) -> dict[str, float]:
        """All metric values of one window."""
        return {name: values[index] for name, values in self.columns.items()}

    # ------------------------------------------------------------------ #
    def to_csv(self) -> str:
        """Render as CSV: one row per window, ``cycle`` first."""
        names = list(self.columns)
        lines = [",".join(["cycle"] + names)]
        for i, cycle in enumerate(self.cycles):
            cells = [str(cycle)]
            cells += [f"{self.columns[name][i]:.6g}" for name in names]
            lines.append(",".join(cells))
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # serialisation (RunResult.meta <-> persistent cache <-> workers)
    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible rendering; inverse of :meth:`from_dict`."""
        return {
            "window": self.window,
            "cycles": list(self.cycles),
            "columns": {name: list(values)
                        for name, values in self.columns.items()},
            "ctas_per_sm": [list(row) for row in self.ctas_per_sm],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TimelineResult":
        return cls(
            window=data["window"],
            cycles=list(data["cycles"]),
            columns={name: list(values)
                     for name, values in data["columns"].items()},
            ctas_per_sm=[list(row) for row in data["ctas_per_sm"]],
        )
