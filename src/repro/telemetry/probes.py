"""The default probe set: what every windowed timeline reports.

Each probe wraps one hardware layer's snapshot interface and turns
cumulative counters into per-window rates (keeping its own previous
snapshot), or reads instantaneous state (occupancy, MSHR fill, warp-state
mix).  Probes are read-only by contract — they may not mutate simulator
state, so enabling them cannot perturb results.

Column reference (see ``docs/TELEMETRY.md`` for semantics):

====================  =====================================================
``ipc``               instructions issued per cycle in the window
``resident_ctas``     mean resident CTAs per SM at the window boundary
``resident_warps``    mean resident warps per SM at the window boundary
``l1_miss_rate``      demand load miss rate (misses+merges)/accesses, window
``l1_mshr``           mean outstanding L1 misses per SM (boundary snapshot)
``l2_miss_rate``      L2 windowed demand miss rate
``l2_mshr``           outstanding L2 misses, all banks (boundary snapshot)
``l2_queued``         requests parked on full L2 MSHRs (boundary snapshot)
``dram_bus_util``     DRAM data-bus occupancy fraction in the window
``stall_ready`` ...   fraction of resident warps per state at the boundary
====================  =====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.gpu import GPU


def _window_miss_rate(snapshot: dict[str, int],
                      last: dict[str, int]) -> tuple[float, dict[str, int]]:
    """Demand-view miss rate over the delta between two cache snapshots."""
    d_accesses = snapshot["accesses"] - last["accesses"]
    d_misses = (snapshot["misses"] - last["misses"]
                + snapshot["merges"] - last["merges"])
    rate = d_misses / d_accesses if d_accesses > 0 else 0.0
    return rate, snapshot


class IssueProbe:
    """Machine-wide issue rate (per-window IPC)."""

    name = "issue"

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu
        self._last_issued = gpu.total_issued

    def sample(self, cycle: int, elapsed: int) -> dict[str, float]:
        issued = self._gpu.total_issued
        ipc = (issued - self._last_issued) / elapsed
        self._last_issued = issued
        return {"ipc": ipc}


class OccupancyProbe:
    """Mean resident CTAs/warps per SM (instantaneous at the boundary)."""

    name = "occupancy"

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu

    def sample(self, cycle: int, elapsed: int) -> dict[str, float]:
        sms = self._gpu.sms
        num = len(sms)
        return {
            "resident_ctas": sum(sm.used_slots for sm in sms) / num,
            "resident_warps": sum(sm.used_warps for sm in sms) / num,
        }


class L1Probe:
    """Aggregate L1 windowed miss rate and MSHR occupancy."""

    name = "l1"

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu
        self._last = self._snapshot()

    def _snapshot(self) -> dict[str, int]:
        totals = {"accesses": 0, "misses": 0, "merges": 0}
        for sm in self._gpu.sms:
            snap = sm.l1.telemetry_snapshot()
            totals["accesses"] += snap["accesses"]
            totals["misses"] += snap["misses"]
            totals["merges"] += snap["merges"]
        return totals

    def sample(self, cycle: int, elapsed: int) -> dict[str, float]:
        rate, self._last = _window_miss_rate(self._snapshot(), self._last)
        sms = self._gpu.sms
        mshr = sum(sm.l1.outstanding_misses for sm in sms) / len(sms)
        return {"l1_miss_rate": rate, "l1_mshr": mshr}


class L2Probe:
    """Shared L2 windowed miss rate, MSHR occupancy, and queue pressure."""

    name = "l2"

    def __init__(self, gpu: "GPU") -> None:
        self._mem = gpu.mem
        self._last = self._snapshot()

    def _snapshot(self) -> dict[str, int]:
        snap = self._mem.telemetry_snapshot()
        return {"accesses": snap["accesses"], "misses": snap["misses"],
                "merges": snap["merges"]}

    def sample(self, cycle: int, elapsed: int) -> dict[str, float]:
        snap = self._mem.telemetry_snapshot()
        rate, self._last = _window_miss_rate(
            {"accesses": snap["accesses"], "misses": snap["misses"],
             "merges": snap["merges"]}, self._last)
        return {"l2_miss_rate": rate,
                "l2_mshr": float(snap["mshr_occupancy"]),
                "l2_queued": float(snap["queued_requests"])}


class DRAMProbe:
    """DRAM data-bus utilization over the window (all channels)."""

    name = "dram"

    def __init__(self, gpu: "GPU") -> None:
        self._dram = gpu.mem.dram
        self._last_busy = self._dram.telemetry_snapshot()["bus_busy_cycles"]

    def sample(self, cycle: int, elapsed: int) -> dict[str, float]:
        snap = self._dram.telemetry_snapshot()
        busy = snap["bus_busy_cycles"]
        util = (busy - self._last_busy) / (elapsed * snap["channels"])
        self._last_busy = busy
        return {"dram_bus_util": util}


class StallMixProbe:
    """Instantaneous warp-state mix over all resident warps.

    Fractions sum to ~1 while any warp is resident; all-zero windows mean
    the machine was empty at the boundary (e.g. between kernel waves).
    """

    name = "stall-mix"

    _COLUMNS = ("stall_ready", "stall_alu", "stall_mem", "stall_barrier")

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu

    def sample(self, cycle: int, elapsed: int) -> dict[str, float]:
        totals = [0, 0, 0, 0]
        for sm in self._gpu.sms:
            counts = sm.warp_state_counts()
            for i in range(4):
                totals[i] += counts[i]
        live = sum(totals)
        if not live:
            return dict.fromkeys(self._COLUMNS, 0.0)
        return {name: totals[i] / live
                for i, name in enumerate(self._COLUMNS)}


def default_probes(gpu: "GPU") -> list:
    """The standard probe set installed by ``TelemetryHub.attach``."""
    return [IssueProbe(gpu), OccupancyProbe(gpu), L1Probe(gpu),
            L2Probe(gpu), DRAMProbe(gpu), StallMixProbe(gpu)]
