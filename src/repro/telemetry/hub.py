"""The telemetry hub: probes, windowed sampling, and the event trace.

Layering
--------

Components never push metrics; they expose cheap read-only *snapshot*
interfaces (``Cache.telemetry_snapshot``, ``SM.warp_state_counts``,
``DRAMModel.telemetry_snapshot``, ...) and the hub *pulls* through
:class:`Probe` objects at window boundaries.  That inversion is what keeps
the disabled path zero-overhead: a GPU built without a hub runs exactly the
pre-telemetry loop (the null-hub branch is taken once, outside the
per-cycle loop — see ``GPU.run``), and an enabled hub only pays one integer
comparison per loop iteration plus the per-window probe sweep.

Discrete occurrences (CTA dispatch/completion, kernel start/end, the LCS
monitoring decision, BCS block pairing, CKE phase transitions) are pushed
through :meth:`TelemetryHub.emit` by the layer that owns them; these are
per-CTA or rarer, never per-cycle.

Determinism contract
--------------------

The hub must never perturb simulation results: it schedules nothing on the
GPU event queue, mutates no component state, and samples only at loop-top
boundaries whose machine state is identical under event fast-forward and
``cycle_accurate=True`` (verified by ``tests/test_telemetry.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Protocol

from .timeline import TimelineResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.gpu import GPU


class TelemetryError(RuntimeError):
    """Misuse of the telemetry subsystem (double attach, bad window...)."""


class Probe(Protocol):
    """A declarative metric source sampled at every window boundary.

    ``sample`` returns a flat mapping of column name to value for the
    window that just closed; it must return the same key set every call
    (columns are positional across windows) and must not mutate any
    simulator state.  Counter-style probes keep their own previous
    cumulative value and report per-window deltas.
    """

    name: str

    def sample(self, cycle: int, elapsed: int) -> Mapping[str, float]:
        ...  # pragma: no cover - protocol


@dataclass
class TraceEvent:
    """One structured trace record (JSON-safe payload values only)."""

    kind: str
    cycle: int
    payload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "cycle": self.cycle,
                "payload": dict(self.payload)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        return cls(kind=data["kind"], cycle=data["cycle"],
                   payload=dict(data["payload"]))


class TelemetryHub:
    """Collects one run's windowed samples and structured trace events.

    Create a hub, hand it to :class:`~repro.sim.gpu.GPU` (directly or via
    ``simulate(..., telemetry=hub)``), run, then read
    :meth:`timeline_result` / :attr:`events`.  A hub observes exactly one
    GPU and one run; build a fresh hub per simulation.

    Parameters
    ----------
    window:
        Sampling period in cycles (None disables windowed sampling).
    trace:
        Record :class:`TraceEvent`\\ s pushed through :meth:`emit`.
    probes:
        Extra probes sampled in addition to the defaults installed at
        attach time (see :func:`repro.telemetry.probes.default_probes`).
    """

    def __init__(self, *, window: int | None = None, trace: bool = True,
                 probes: Iterable[Probe] = ()) -> None:
        if window is not None and window < 1:
            raise TelemetryError("window must be >= 1 (or None to disable)")
        self.window = window
        self.trace_enabled = trace
        self.events: list[TraceEvent] = []
        self.probes: list[Probe] = list(probes)
        self.gpu: "GPU | None" = None
        self._cycles: list[int] = []
        self._columns: dict[str, list[float]] = {}
        self._ctas_per_sm: list[list[int]] = []
        self._window_start = 0

    def __repr__(self) -> str:
        return (f"TelemetryHub(window={self.window}, "
                f"trace={self.trace_enabled}, windows={len(self._cycles)}, "
                f"events={len(self.events)})")

    # ------------------------------------------------------------------ #
    # wiring
    def attach(self, gpu: "GPU") -> None:
        """Bind to a GPU (called by ``GPU.__init__``); installs the default
        probe set when windowed sampling is enabled."""
        if self.gpu is not None:
            raise TelemetryError(
                "hub already attached; create one hub per run")
        self.gpu = gpu
        if self.window is not None:
            from .probes import default_probes
            self.probes = default_probes(gpu) + self.probes

    def add_probe(self, probe: Probe) -> None:
        self.probes.append(probe)

    # ------------------------------------------------------------------ #
    # event trace
    def emit(self, kind: str, cycle: int, /, **payload: Any) -> None:
        """Record one structured event (no-op when tracing is disabled).

        Payload values must be JSON-native (str/int/float/bool/None and
        lists/dicts thereof) so traces survive worker transport and the
        persistent cache byte-identically.
        """
        if self.trace_enabled:
            self.events.append(TraceEvent(kind, cycle, payload))

    def trace_events(self) -> list[dict[str, Any]]:
        """The trace as plain dicts (JSON-safe, rides ``RunResult.meta``)."""
        return [event.to_dict() for event in self.events]

    # ------------------------------------------------------------------ #
    # windowed sampling (driven by GPU.run)
    def on_run_start(self, cycle: int) -> None:
        self._window_start = cycle
        self.emit("run.start", cycle)

    def close_window(self, boundary: int) -> None:
        """Sample every probe for the window ending at ``boundary``."""
        gpu = self.gpu
        elapsed = boundary - self._window_start
        if gpu is None or elapsed <= 0:
            return
        self._window_start = boundary
        self._cycles.append(boundary)
        self._ctas_per_sm.append([sm.used_slots for sm in gpu.sms])
        columns = self._columns
        for probe in self.probes:
            for name, value in probe.sample(boundary, elapsed).items():
                columns.setdefault(name, []).append(value)

    def on_run_end(self, cycle: int) -> None:
        """Flush the final (possibly partial) window and close the trace."""
        if self.window is not None and cycle > self._window_start:
            self.close_window(cycle)
        self.emit("run.end", cycle)

    # ------------------------------------------------------------------ #
    def timeline_result(self) -> TimelineResult | None:
        """The collected series (None when sampling was disabled)."""
        if self.window is None:
            return None
        return TimelineResult(
            window=self.window,
            cycles=list(self._cycles),
            columns={name: list(values)
                     for name, values in self._columns.items()},
            ctas_per_sm=[list(row) for row in self._ctas_per_sm],
        )
