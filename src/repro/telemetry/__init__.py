"""Layered observability for the simulator (probes, timelines, traces).

Quick start::

    from repro.harness.runner import simulate
    from repro.telemetry import TelemetryHub

    hub = TelemetryHub(window=500)            # sample every 500 cycles
    result = simulate(kernel, telemetry=hub)  # golden stats unchanged
    timeline = result.meta["timeline"]        # TimelineResult
    print(timeline.to_csv())

See ``docs/TELEMETRY.md`` for the probe API, window semantics, the trace
schema and the chrome://tracing workflow.
"""

from .hub import Probe, TelemetryError, TelemetryHub, TraceEvent
from .timeline import TimelineResult
from .trace import (chrome_trace, drift_lane, merge_chrome_traces,
                    to_jsonl, write_trace)

__all__ = [
    "Probe",
    "TelemetryError",
    "TelemetryHub",
    "TimelineResult",
    "TraceEvent",
    "chrome_trace",
    "drift_lane",
    "merge_chrome_traces",
    "to_jsonl",
    "write_trace",
]
