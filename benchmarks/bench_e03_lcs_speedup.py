"""E3 — headline figure: LCS speedup over the max-occupancy baseline.

Paper claim reproduced: LCS wins substantially on cache/MSHR-limited
kernels, is ~neutral on the rest, and tracks the static oracle.
"""

from bench_common import run_and_print
from repro.harness.experiments import e3_lcs_speedup


def test_e3_lcs_speedup(benchmark, ctx):
    table = run_and_print(benchmark, e3_lcs_speedup, ctx)
    gmean_row = table.row_for("GMEAN")
    assert gmean_row[4] >= 1.0          # LCS gmean never loses overall
    assert table.row_for("kmeans")[4] > 1.05   # the headline win
    # No benchmark loses more than a few percent (worst observed at full
    # scale: backprop 0.949).
    for row in table.rows[:-1]:
        assert row[4] > 0.93, f"{row[0]} regressed under LCS"
