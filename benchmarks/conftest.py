"""Shared context for the benchmark harness.

Every ``bench_eNN_*.py`` regenerates one of the paper's reconstructed
figures/tables (see DESIGN.md's experiment index).  They share one
:class:`~repro.harness.experiments.ExperimentContext` per session, so runs
reused across experiments (baselines, oracle sweeps) are simulated once.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable
(default 0.5; EXPERIMENTS.md numbers were recorded at 1.0).  Each benchmark
runs exactly once (``rounds=1``) — these are macro-experiments, not
micro-benchmarks, and they are deterministic.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.experiments import ExperimentContext

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(scale=BENCH_SCALE)
