"""Engine benchmarks: serial vs parallel vs warm-cache execution.

Unlike the ``bench_eNN_*`` macro-experiments these measure the *harness*
itself: the same batch of independent jobs run serially, through the
process pool, and replayed from a warm cache — asserting field-for-field
identical results every time.  On a multi-core machine the parallel round
approaches ``min(workers, len(jobs))``× the serial throughput; on a
single-core CI box it mainly demonstrates that pool overhead is bounded.

Scale with ``REPRO_BENCH_SCALE`` like the experiment benchmarks.
"""

from __future__ import annotations

import os

from repro.harness.cache import ResultCache
from repro.harness.engine import default_workers, run_jobs
from repro.harness.jobs import SimJob
from repro.sim.config import GPUConfig

ENGINE_SCALE = 0.2 * float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
SMALL = GPUConfig.small()

BENCHES = ("kmeans", "streaming", "compute", "stencil")
POLICIES = (("rr",), ("lcs",), ("static", 2))


def _jobs() -> list[SimJob]:
    return [SimJob(names=(name,), scale=ENGINE_SCALE, policy=policy,
                   config=SMALL)
            for name in BENCHES for policy in POLICIES]


def test_engine_serial(benchmark):
    results = benchmark.pedantic(lambda: run_jobs(_jobs(), workers=1),
                                 rounds=1, iterations=1)
    assert len(results) == len(BENCHES) * len(POLICIES)


def test_engine_parallel_matches_serial(benchmark):
    workers = max(2, min(default_workers(), 8))
    parallel = benchmark.pedantic(
        lambda: run_jobs(_jobs(), workers=workers), rounds=1, iterations=1)
    serial = run_jobs(_jobs(), workers=1)
    assert parallel == serial   # dataclass ==: field-for-field identical


def test_engine_warm_cache_replay(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = run_jobs(_jobs(), workers=1, cache=cache)
    assert cache.misses == len(cold)

    warm = benchmark.pedantic(
        lambda: run_jobs(_jobs(), workers=1, cache=cache),
        rounds=1, iterations=1)
    assert cache.hits == len(cold)   # zero simulations executed
    assert warm == cold
