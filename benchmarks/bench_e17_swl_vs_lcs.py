"""E17 (extension) — throttling granularity: static warp limiting vs LCS.

A well-chosen *static* warp limit matches the static CTA-limit oracle (the
two granularities reach the same sweet spot); the paper's contribution is
finding the limit *online* with one monitoring pass — which SWL cannot do.
"""

from bench_common import run_and_print
from repro.harness.experiments import e17_swl_vs_lcs


def test_e17_swl_vs_lcs(benchmark, ctx):
    table = run_and_print(benchmark, e17_swl_vs_lcs, ctx)
    rows = {row[0]: row for row in table.rows}
    # The headline cache kernel: a good static warp limit wins big...
    assert rows["kmeans"][-2] > 1.2
    # ...and LCS captures a meaningful part of it online.
    assert rows["kmeans"][-1] > 1.05
    for row in table.rows:
        name, best_swl, lcs = row[0], row[-2], row[-1]
        assert best_swl >= 0.95, f"{name}: every SWL point hurts"
        assert lcs >= 0.95, f"{name}: LCS regressed"
