"""E15 (extension) — composing the paper's two mechanisms (LCS + BCS).

Block dispatch preserves inter-CTA locality; the lazy limit avoids L1
over-subscription.  Composed, they should not lose to the better of the
two on the locality kernels.
"""

from bench_common import run_and_print
from repro.harness.experiments import e15_lcs_plus_bcs


def test_e15_lcs_plus_bcs(benchmark, ctx):
    table = run_and_print(benchmark, e15_lcs_plus_bcs, ctx)
    gmean = table.row_for("GMEAN")
    lcs, bcs, both = gmean[1], gmean[2], gmean[3]
    assert both > 1.0                       # composition wins vs baseline
    assert both >= min(lcs, bcs) - 0.05     # and doesn't wreck either part
