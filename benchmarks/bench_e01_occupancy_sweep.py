"""E1 — motivation figure: normalized IPC vs CTAs per core.

Paper claim reproduced: memory-sensitive kernels peak *below* maximum
occupancy; compute-bound kernels are flat or increasing.
"""

from bench_common import run_and_print
from repro.harness.experiments import e1_occupancy_sweep


def test_e1_occupancy_sweep(benchmark, ctx):
    table = run_and_print(benchmark, e1_occupancy_sweep, ctx)
    best = dict(zip(table.column("benchmark"), table.column("best_n")))
    max_n = dict(zip(table.column("benchmark"), table.column("max_n")))
    # The cache-sensitive kernels peak strictly below maximum occupancy...
    assert best["kmeans"] < max_n["kmeans"]
    assert best["iindex"] < max_n["iindex"]
    # ...while the compute kernel wants (close to) the maximum.
    assert best["compute"] >= max_n["compute"] - 1
