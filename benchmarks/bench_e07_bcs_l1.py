"""E7 — L1 behaviour under BCS: miss rates and MSHR merges.

Paper claim reproduced: pairing consecutive CTAs on one core converts the
halo lines' second fetch into L1 hits/merges, cutting the miss rate on
every locality kernel.
"""

from bench_common import run_and_print
from repro.harness.experiments import e7_bcs_l1


def test_e7_bcs_l1(benchmark, ctx):
    table = run_and_print(benchmark, e7_bcs_l1, ctx)
    for row in table.rows:
        name, miss_base, miss_bcs, miss_baws = row[0], row[1], row[2], row[3]
        assert miss_bcs < miss_base, f"{name}: BCS did not cut L1 misses"
        assert miss_baws < miss_base, f"{name}: BAWS did not cut L1 misses"
