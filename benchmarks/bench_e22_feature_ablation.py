"""E22 (ablation) — optional micro-architecture features on vs off.

Next-line prefetch and store write-combining are off by default; the
ablation confirms the conclusions do not depend on them and the model
responds in the expected directions.
"""

from bench_common import run_and_print
from repro.harness.experiments import e22_feature_ablation


def test_e22_feature_ablation(benchmark, ctx):
    table = run_and_print(benchmark, e22_feature_ablation, ctx)
    rows = {row[0]: row for row in table.rows}
    # Sequential streams actually prefetch; random kernels mostly don't.
    assert rows["streaming"][3] > 0
    # The write-combining window absorbs hot-bin stores on histogram.
    assert rows["histogram"][4] > 0
    # Neither feature catastrophically breaks anything.
    for row in table.rows:
        assert row[1] > 0.9 and row[2] > 0.9
