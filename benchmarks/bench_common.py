"""Shared helper for the benchmark harness."""

from __future__ import annotations


def run_and_print(benchmark, driver, ctx, **kwargs):
    """Run one experiment driver under pytest-benchmark and print its table."""
    table = benchmark.pedantic(lambda: driver(ctx, **kwargs),
                               rounds=1, iterations=1)
    print()
    print(table.render())
    return table
