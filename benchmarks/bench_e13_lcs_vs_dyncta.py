"""E13 (extension) — LCS vs DynCTA-style continuous throttling.

Context: the paper positions LCS against prior CTA-throttling work
(Kayiran et al., PACT 2013) as simpler (one-shot decision, one counter per
CTA slot) while competitive.  This experiment reproduces that comparison.
"""

from bench_common import run_and_print
from repro.harness.experiments import e13_lcs_vs_dyncta


def test_e13_lcs_vs_dyncta(benchmark, ctx):
    table = run_and_print(benchmark, e13_lcs_vs_dyncta, ctx)
    gmean = table.row_for("GMEAN")
    lcs, dyncta = gmean[1], gmean[2]
    # One-shot LCS is competitive with continuous throttling overall.
    assert lcs >= dyncta - 0.05
    assert lcs >= 1.0
