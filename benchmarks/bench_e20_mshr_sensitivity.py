"""E20 (modelling ablation) — LCS vs the L1 MSHR budget.

The reproduction's L1 MSHR count (16) is a pivotal modelling choice: MSHRs
are themselves a throttle on over-subscription.  The claim that LCS wins on
cache-sensitive kernels must hold across a reasonable MSHR range.
"""

from bench_common import run_and_print
from repro.harness.experiments import e20_mshr_sensitivity


def test_e20_mshr_sensitivity(benchmark, ctx):
    table = run_and_print(benchmark, e20_mshr_sensitivity, ctx,
                          benchmarks=("kmeans",), mshr_counts=(8, 16, 32))
    row = table.row_for("kmeans")
    # LCS wins clearly while MSHRs are scarce (8, 16 entries) and must not
    # hurt when they are plentiful.
    assert row[1] > 1.05 and row[2] > 1.05
    assert row[3] > 0.95
