"""E19 (robustness) — the LCS conclusions on a Kepler-class machine.

Fatter cores (16 CTA slots, 64 warps) move the absolute numbers; the
qualitative claim — cache-sensitive kernels throttle and win, compute
kernels don't — must survive the configuration change.
"""

from bench_common import run_and_print
from repro.harness.experiments import e19_config_robustness


def test_e19_config_robustness(benchmark, ctx):
    table = run_and_print(benchmark, e19_config_robustness, ctx)
    rows = {row[0]: row for row in table.rows}
    # Still throttles, never regresses, and the win grows with grid size
    # (full scale: 1.36x — see EXPERIMENTS.md).
    assert rows["kmeans"][2] < rows["kmeans"][1]   # still throttles
    assert rows["kmeans"][3] >= 0.99
    assert rows["compute"][3] > 0.97        # still ~neutral
