"""E4 — LCS decision quality: online N* vs the exhaustive static oracle.

Paper claim reproduced: the one-shot monitoring decision lands within one
CTA of the oracle's static best for most kernels, and its end-to-end
performance stays close to the oracle's.
"""

from bench_common import run_and_print
from repro.harness.experiments import e4_lcs_vs_oracle


def test_e4_lcs_vs_oracle(benchmark, ctx):
    table = run_and_print(benchmark, e4_lcs_vs_oracle, ctx)
    within = table.column("within_one")
    assert sum(within) >= len(within) * 0.5
    # LCS stays close to the oracle overall.  Individual kernels can sit on
    # a sharp cliff (kmeans: N*=4 vs oracle 3 costs ~half the oracle's win),
    # so the per-kernel bound is loose and the aggregate bound tight.
    from repro.harness.reporting import geomean
    ratios = table.column("lcs_vs_oracle_cycles")
    assert geomean(ratios) > 0.8
    for row in table.rows:
        assert row[4] > 0.45, f"{row[0]} far from oracle"
