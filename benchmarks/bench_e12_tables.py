"""E12 — configuration and benchmark-characteristics tables.

Regenerates the two descriptive tables every simulation paper carries: the
simulated machine configuration and the workload characteristics
(grid/CTA geometry, occupancy, memory intensity).
"""

from bench_common import run_and_print
from repro.harness.experiments import e12_benchmark_table, e12_config_table
from repro.workloads.suite import SUITE


def test_e12_config_table(benchmark, ctx):
    table = run_and_print(benchmark, e12_config_table, ctx)
    assert table.row_for("SIMT cores")[1] == 15


def test_e12_benchmark_table(ctx, benchmark):
    table = run_and_print(benchmark, e12_benchmark_table, ctx)
    assert len(table.rows) == len(SUITE)
    for row in table.rows:
        assert row[4] >= 1          # occupancy
        assert 0.0 <= row[5] <= 1.0  # memory intensity
