"""E18 (extension/limitation) — phase-changing kernels.

One-shot LCS decides during the cache-thrashing first phase; when the
kernel turns compute-bound the limit is stale.  The experiment quantifies
how much of the static oracle's benefit the one-shot decision retains and
how a continuous scheme (DynCTA) behaves on the same kernel.
"""

from bench_common import run_and_print
from repro.harness.experiments import e18_phase_sensitivity


def test_e18_phase_sensitivity(benchmark, ctx):
    table = run_and_print(benchmark, e18_phase_sensitivity, ctx)
    rows = {row[0]: row for row in table.rows}
    assert rows["static_oracle"][2] >= rows["lcs"][2] - 1e-9
    # The one-shot decision still retains a meaningful share of the oracle.
    assert rows["lcs"][2] > rows["static_oracle"][2] * 0.6
