"""Core-backend benchmark: object vs vector wall-clock, with parity.

Runs the pinned 12-cell kernel/policy matrix (the same mix
``bench_engine.py`` uses) once per simulator backend, asserts the two
results are bitwise-identical, and reports per-cell wall-clock and
speedup plus the geometric-mean speedup.  The committed snapshot lives in
``BENCH_core.json`` at the repo root (regenerate with ``make bench-core``
on a quiet machine).

Two modes:

``--out PATH``
    Measure and write the JSON snapshot (the default writes
    ``BENCH_core.json`` in the current directory).

``--check PATH``
    Measure and compare against a committed snapshot: any cell whose
    vector-vs-object *speedup* regressed by more than ``--tolerance``
    (default 20 %) fails the run.  Speedup ratios — not absolute seconds —
    are compared, so the check is stable across machines of different
    absolute speed; parity is always asserted regardless.

Timing methodology: each (cell, backend) pair runs ``--repeats`` times
(default 3) and the minimum is kept — the standard way to suppress
scheduler noise for single-process CPU work.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from dataclasses import replace

from repro.harness.jobs import SimJob
from repro.sim.config import GPUConfig
from repro.verify.golden import canonical_result, diff_paths

#: The measured mix: every engine-bench kernel x the paper's headline
#: policies.  Scale 0.1 keeps the full matrix under ~2 min on one core.
BENCHES = ("kmeans", "streaming", "compute", "stencil")
POLICIES = (("rr",), ("lcs",), ("static", 2))
SCALE = 0.1
SEED = 20140219


def matrix() -> list[SimJob]:
    return [SimJob(names=(name,), scale=SCALE, seed=SEED, warp="gto",
                   policy=policy, config=GPUConfig.small())
            for name in BENCHES for policy in POLICIES]


def _label(job: SimJob) -> str:
    policy = "+".join(str(p) for p in job.policy)
    return f"{job.names[0]}-{policy}"


def _time_backend(job: SimJob, backend: str, repeats: int):
    """(best wall-clock seconds, result dict) for one cell on one core."""
    best = math.inf
    result = None
    for _ in range(repeats):
        run = replace(job, backend=backend)
        started = time.perf_counter()
        outcome = run.execute()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
        result = outcome
    return best, canonical_result(result.to_dict())


def measure(repeats: int, quiet: bool = False) -> dict:
    cells = []
    for job in matrix():
        label = _label(job)
        obj_s, obj = _time_backend(job, "object", repeats)
        vec_s, vec = _time_backend(job, "vector", repeats)
        diffs = diff_paths(obj, vec)
        if diffs:
            raise SystemExit(
                f"bench-core: PARITY FAILURE in {label}: object and vector "
                f"backends disagree at {len(diffs)} path(s); first: "
                f"{diffs[:3]}")
        speedup = obj_s / vec_s if vec_s > 0 else math.inf
        cells.append({"label": label, "kernel": job.names[0],
                      "policy": list(job.policy),
                      "object_s": round(obj_s, 4),
                      "vector_s": round(vec_s, 4),
                      "speedup": round(speedup, 3)})
        if not quiet:
            print(f"  {label:<18} object {obj_s:7.3f}s   vector "
                  f"{vec_s:7.3f}s   {speedup:5.2f}x  parity ok")
    geomean = math.exp(sum(math.log(c["speedup"]) for c in cells)
                       / len(cells))
    return {
        "bench": "core-backend",
        "scale": SCALE,
        "seed": SEED,
        "config": "small",
        "warp": "gto",
        "repeats": repeats,
        "cells": cells,
        "geomean_speedup": round(geomean, 3),
    }


def check(snapshot: dict, baseline: dict, tolerance: float) -> int:
    """Compare measured speedups against the committed baseline."""
    base_cells = {c["label"]: c for c in baseline["cells"]}
    failures = 0
    for cell in snapshot["cells"]:
        base = base_cells.get(cell["label"])
        if base is None:
            print(f"bench-core: cell {cell['label']} missing from baseline "
                  "(re-baseline with `make bench-core`)", file=sys.stderr)
            failures += 1
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if cell["speedup"] < floor:
            print(f"bench-core: REGRESSION in {cell['label']}: speedup "
                  f"{cell['speedup']:.2f}x < {floor:.2f}x "
                  f"(baseline {base['speedup']:.2f}x - {tolerance:.0%})",
                  file=sys.stderr)
            failures += 1
    base_geo = baseline["geomean_speedup"]
    geo_floor = base_geo * (1.0 - tolerance)
    if snapshot["geomean_speedup"] < geo_floor:
        print(f"bench-core: REGRESSION in geomean: "
              f"{snapshot['geomean_speedup']:.2f}x < {geo_floor:.2f}x "
              f"(baseline {base_geo:.2f}x - {tolerance:.0%})",
              file=sys.stderr)
        failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="object-vs-vector core benchmark with parity assert")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON snapshot here "
                             "(default: BENCH_core.json unless --check)")
    parser.add_argument("--check", default=None, metavar="PATH",
                        help="compare speedups against a committed snapshot "
                             "instead of writing one")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell/backend; min is kept "
                             "(default 3)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional speedup regression for "
                             "--check (default 0.20)")
    args = parser.parse_args(argv)

    print(f"bench-core: {len(BENCHES) * len(POLICIES)} cells, scale "
          f"{SCALE}, {args.repeats} repeat(s) per backend")
    snapshot = measure(args.repeats)
    print(f"bench-core: geomean speedup "
          f"{snapshot['geomean_speedup']:.2f}x, parity ok on all cells")

    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check(snapshot, baseline, args.tolerance)
        if failures:
            print(f"bench-core: {failures} regression(s) vs {args.check}",
                  file=sys.stderr)
            return 1
        print(f"bench-core: no speedup regression vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
        return 0

    out = args.out or "BENCH_core.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"bench-core: wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
