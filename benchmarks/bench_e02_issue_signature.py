"""E2 — motivation figure: per-CTA issue distribution under GTO.

Paper claim reproduced: during the monitoring period the issue counts of a
memory-limited kernel drop off steeply beyond the CTAs the core actually
needs, while a compute-bound kernel's utilization guard recognises that the
concentration is an artefact of greedy scheduling.
"""

from bench_common import run_and_print
from repro.harness.experiments import e2_issue_signature


def test_e2_issue_signature(benchmark, ctx):
    table = run_and_print(benchmark, e2_issue_signature, ctx)
    kmeans = table.row_for("kmeans")
    shares = [v for v in kmeans[1:-1] if v != "-"]
    # Steep drop-off: the weakest CTA issued well under half of the busiest.
    assert min(shares) < 0.5
    assert shares == sorted(shares, reverse=True)
