"""E8 — concurrent kernel execution: sequential vs spatial vs SMK vs mixed.

Paper claim reproduced: intra-core mixing beats sequential execution, and
the LCS-guided mixed allocation is the best (or tied-best) policy on
average for memory+compute kernel pairs.
"""

from bench_common import run_and_print
from repro.harness.experiments import e8_cke


def test_e8_cke(benchmark, ctx):
    table = run_and_print(benchmark, e8_cke, ctx)
    gmean = table.row_for("GMEAN")
    spatial, smk, mixed = gmean[2], gmean[3], gmean[4]
    assert mixed > 1.05          # mixed beats sequential overall
    assert mixed > spatial       # and whole-core partitioning
    # SMK-even (a policy from *later* literature than the paper) is a
    # strong strawman; mixed stays within a few percent of it overall.
    assert mixed >= smk * 0.90
