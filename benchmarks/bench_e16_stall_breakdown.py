"""E16 (analysis) — warp-state time breakdown, baseline vs LCS.

Shows *why* LCS helps: on cache-sensitive kernels the fraction of warp
time spent memory-stalled (and the memory wait per instruction) drops
after throttling, while compute kernels are untouched.
"""

from bench_common import run_and_print
from repro.harness.experiments import e16_stall_breakdown


def test_e16_stall_breakdown(benchmark, ctx):
    table = run_and_print(benchmark, e16_stall_breakdown, ctx)
    rows = {(row[0], row[1]): row for row in table.rows}
    base = rows[("kmeans", "base")]
    lcs = rows[("kmeans", "lcs")]
    # Memory wait per instruction shrinks under LCS on the cache kernel.
    assert lcs[6] < base[6]
    # The memory-bound kernel is dominated by memory time at baseline.
    assert base[2] > 0.5
