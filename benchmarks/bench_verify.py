"""Verification-layer benchmarks: what the correctness armor costs.

Like ``bench_engine.py`` these measure the harness, not the model: the
reference pipeline's slowdown over the tuned hot path (it is allowed to
be slow — that is its point — but a runaway factor would make the
nightly cross-check matrix impractical), the golden smoke gate
end-to-end, and a short fuzz campaign.  Each round also re-asserts the
layer's core contract so a timing run doubles as a correctness run.

Scale with ``REPRO_BENCH_SCALE`` like the experiment benchmarks.
"""

from __future__ import annotations

import os

from repro.harness.jobs import SimJob
from repro.sim.config import GPUConfig
from repro.verify.fuzzer import run_fuzz
from repro.verify.golden import (GoldenStore, golden_matrix, verify_goldens)
from repro.verify.refmodel import cross_check, reference_simulate

VERIFY_SCALE = 0.1 * float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
SMALL = GPUConfig.small()


def _job() -> SimJob:
    return SimJob(names=("kmeans",), scale=VERIFY_SCALE, warp="gto",
                  policy=("lcs",), config=SMALL)


def test_reference_model_overhead(benchmark):
    job = _job()
    tuned = job.execute()
    reference = benchmark.pedantic(lambda: reference_simulate(_job()),
                                   rounds=1, iterations=1)
    assert reference.to_dict() == tuned.to_dict()   # bitwise agreement


def test_refmodel_cross_check_cell(benchmark):
    result = benchmark.pedantic(lambda: cross_check(_job(), window=200),
                                rounds=1, iterations=1)
    assert not result.diverged, result.summary()


def test_golden_smoke_gate(benchmark, tmp_path):
    cells = golden_matrix("smoke")
    store = GoldenStore(tmp_path / "goldens")
    baseline = verify_goldens(cells, store, update=True)
    assert baseline.ok

    report = benchmark.pedantic(lambda: verify_goldens(cells, store),
                                rounds=1, iterations=1)
    assert report.ok, report.summary()


def test_fuzz_campaign(benchmark):
    report = benchmark.pedantic(lambda: run_fuzz(20140219, 5),
                                rounds=1, iterations=1)
    assert report.ok
    assert report.cases == 5
