"""E6 — BCS speedup on the inter-CTA-locality kernels.

Paper claim reproduced: dispatching consecutive CTA pairs to the same core
speeds up halo-sharing kernels; the block-aware warp scheduler keeps the
siblings aligned.
"""

from bench_common import run_and_print
from repro.harness.experiments import e6_bcs


def test_e6_bcs(benchmark, ctx):
    table = run_and_print(benchmark, e6_bcs, ctx)
    gmean = table.row_for("GMEAN")
    assert gmean[2] > 1.02   # BCS + GTO wins on the locality set
    assert gmean[3] > 1.02   # BCS + BAWS wins too
    for row in table.rows[:-1]:
        assert row[3] > 0.95, f"{row[0]} regressed under BCS+BAWS"
