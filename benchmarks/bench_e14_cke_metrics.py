"""E14 (extension) — multiprogram metrics for concurrent kernel execution.

Beyond raw completion time, mixed CKE should deliver system throughput
(STP) at reasonable fairness — the standard CKE-literature metrics.
"""

from bench_common import run_and_print
from repro.harness.experiments import e14_cke_metrics


def test_e14_cke_metrics(benchmark, ctx):
    table = run_and_print(benchmark, e14_cke_metrics, ctx)
    mixed_rows = [row for row in table.rows if row[1] == "mixed"]
    assert mixed_rows
    for row in mixed_rows:
        pair, policy, antt, stp, fairness = row
        assert antt >= 0.99            # co-running can't beat solo for both
        assert stp > 1.0               # but it beats running one at a time
        assert 0.0 < fairness <= 1.0
