"""E5 — warp-scheduler baseline: GTO vs loose round robin.

Paper context reproduced: GTO matches or beats LRR on most kernels (GTO is
the baseline warp scheduler the paper builds LCS on).
"""

from bench_common import run_and_print
from repro.harness.experiments import e5_warp_schedulers


def test_e5_warp_schedulers(benchmark, ctx):
    table = run_and_print(benchmark, e5_warp_schedulers, ctx)
    gmean = table.row_for("GMEAN")
    gto_over_lrr = gmean[4]
    assert gto_over_lrr >= 0.98      # GTO matches or beats LRR overall
