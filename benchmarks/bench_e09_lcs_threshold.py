"""E9 — sensitivity of LCS to its decision rule and parameter.

Paper-style sensitivity study: the default tail rule at 0.5 is at a broad
optimum; neighbouring parameters stay close, so the mechanism is not
fragile.
"""

from bench_common import run_and_print
from repro.harness.experiments import e9_lcs_threshold


def test_e9_lcs_threshold(benchmark, ctx):
    table = run_and_print(benchmark, e9_lcs_threshold, ctx)
    gmeans = table.row_for("GMEAN")[1:]
    default_idx = list(table.columns[1:]).index("tai=0.5")
    default = gmeans[default_idx]
    assert default >= max(gmeans) - 0.03   # default near the sweep optimum
    assert default >= 1.0
