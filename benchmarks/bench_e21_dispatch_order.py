"""E21 (ablation) — dispatch order: depth-first co-location vs BCS.

Depth-first filling co-locates consecutive CTAs only at fill time and lets
the pairing decay; BCS maintains it deliberately.  The gap between the two
is the part of BCS's win that comes from *sustained* pairing.
"""

from bench_common import run_and_print
from repro.harness.experiments import e21_dispatch_order


def test_e21_dispatch_order(benchmark, ctx):
    table = run_and_print(benchmark, e21_dispatch_order, ctx)
    gmean = table.row_for("GMEAN")
    depth_first, bcs = gmean[1], gmean[2]
    assert bcs > depth_first     # deliberate pairing beats accidental
    assert bcs > 1.05
