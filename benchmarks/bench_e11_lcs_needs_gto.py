"""E11 — ablation: LCS monitoring needs a greedy warp scheduler.

Paper claim reproduced: LCS "leverages a greedy warp scheduler" — under a
fair (LRR) scheduler the per-CTA issue counts flatten and the decision
drifts away from the oracle.
"""

from bench_common import run_and_print
from repro.harness.experiments import e11_lcs_needs_gto


def test_e11_lcs_needs_gto(benchmark, ctx):
    table = run_and_print(benchmark, e11_lcs_needs_gto, ctx)
    gto_err = 0
    lrr_err = 0
    for row in table.rows:
        n_oracle, n_gto, n_lrr = row[1], row[2], row[3]
        gto_err += abs(n_gto - n_oracle)
        lrr_err += abs(n_lrr - n_oracle)
    # GTO monitoring tracks the oracle at least as well as LRR monitoring.
    assert gto_err <= lrr_err
