"""E10 — sensitivity of BCS to the block size.

Paper claim reproduced: blocks of two consecutive CTAs are the sweet spot;
blocks of four over-serialise dispatch and fragment occupancy.
"""

from bench_common import run_and_print
from repro.harness.experiments import e10_block_size


def test_e10_block_size(benchmark, ctx):
    table = run_and_print(benchmark, e10_block_size, ctx)
    gmean = table.row_for("GMEAN")
    block1, block2, block4 = gmean[1], gmean[2], gmean[3]
    assert block2 > block1          # pairing beats no blocking
    assert block2 >= block4 - 0.02  # and 4-blocks do not beat pairs
